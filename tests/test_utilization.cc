/**
 * @file
 * Tests for core/utilization.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/utilization.hh"
#include "synth/workload.hh"

namespace dlw
{
namespace core
{
namespace
{

disk::ServiceLog
logWith(Tick window, std::vector<trace::BusyInterval> busy)
{
    disk::ServiceLog log;
    log.window_start = 0;
    log.window_end = window;
    log.busy = std::move(busy);
    return log;
}

TEST(Utilization, HandBuiltProfile)
{
    // 10 s window, busy [0,1s) and [5s,9s): mean util 0.5.
    auto log = logWith(10 * kSec,
                       {{0, kSec}, {5 * kSec, 9 * kSec}});
    UtilizationProfile p = utilizationProfile(log, kSec);
    ASSERT_EQ(p.series.size(), 10u);
    EXPECT_NEAR(p.mean, 0.5, 1e-9);
    EXPECT_NEAR(p.peak, 1.0, 1e-9);
    EXPECT_NEAR(p.idle_fraction, 0.5, 1e-9);
    EXPECT_NEAR(p.saturated_fraction, 0.5, 1e-9);
    EXPECT_EQ(p.bin_width, kSec);
}

TEST(Utilization, MeanInvariantAcrossScales)
{
    auto log = logWith(100 * kSec,
                       {{3 * kSec, 17 * kSec},
                        {40 * kSec, 41 * kSec},
                        {80 * kSec, 99 * kSec}});
    auto profiles = utilizationAcrossScales(
        log, {100 * kMsec, kSec, 10 * kSec, 100 * kSec});
    ASSERT_EQ(profiles.size(), 4u);
    for (const auto &p : profiles)
        EXPECT_NEAR(p.mean, profiles[0].mean, 1e-6);
}

TEST(Utilization, PeakGrowsAsWindowShrinks)
{
    // One 1-second burst in 100 s: invisible at coarse scale.
    auto log = logWith(100 * kSec, {{50 * kSec, 51 * kSec}});
    auto profiles = utilizationAcrossScales(
        log, {100 * kMsec, 10 * kSec, 100 * kSec});
    EXPECT_NEAR(profiles[0].peak, 1.0, 1e-9);
    EXPECT_NEAR(profiles[1].peak, 0.1, 1e-9);
    EXPECT_NEAR(profiles[2].peak, 0.01, 1e-9);
    // Monotone non-increasing peaks with coarser bins.
    EXPECT_GE(profiles[0].peak, profiles[1].peak);
    EXPECT_GE(profiles[1].peak, profiles[2].peak);
}

TEST(Utilization, FromHourTrace)
{
    trace::HourTrace t("d", 0);
    for (double u : {0.0, 0.25, 0.5, 1.0}) {
        trace::HourBucket b;
        b.busy = static_cast<Tick>(u * static_cast<double>(kHour));
        t.append(b);
    }
    UtilizationProfile p = utilizationProfile(t);
    EXPECT_EQ(p.bin_width, kHour);
    EXPECT_NEAR(p.mean, 0.4375, 1e-9);
    EXPECT_NEAR(p.idle_fraction, 0.25, 1e-9);
    EXPECT_NEAR(p.saturated_fraction, 0.25, 1e-9);
}

TEST(Utilization, EmptyLog)
{
    auto log = logWith(0, {});
    UtilizationProfile p = utilizationProfile(log, kSec);
    EXPECT_TRUE(p.series.empty());
    EXPECT_DOUBLE_EQ(p.mean, 0.0);
}

TEST(Utilization, ModerateWorkloadIsModeratelyUtilized)
{
    // The paper's headline: realistic enterprise load leaves the
    // drive moderately utilized with idle bins present.
    Rng rng(1);
    synth::Workload w =
        synth::Workload::makeOltp(1 << 22, 60.0);
    trace::MsTrace tr = w.generate(rng, "d", 0, 60 * kSec);
    disk::DiskDrive drive(disk::DriveConfig::makeEnterprise());
    disk::ServiceLog log = drive.service(tr);
    UtilizationProfile p = utilizationProfile(log, kSec);
    EXPECT_GT(p.mean, 0.02);
    EXPECT_LT(p.mean, 0.8);
    EXPECT_GT(p.peak, p.mean);
}

} // anonymous namespace
} // namespace core
} // namespace dlw
