#include "trace/source.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "obs/timeline.hh"

namespace dlw
{
namespace trace
{

namespace
{

/**
 * The trace.batch.* metric family: how many chunks the streaming
 * pipeline decoded, how many requests rode in them, and the largest
 * chunk payload seen — the number the O(batch) memory claim is
 * about.
 */
struct BatchMetrics
{
    obs::Counter &batches = obs::counter("trace.batch.batches",
        "batches", "trace",
        "request batches delivered by streaming sources");
    obs::Counter &requests = obs::counter("trace.batch.requests",
        "requests", "trace",
        "requests delivered inside streaming batches");
    obs::Gauge &peak_bytes = obs::gauge("trace.batch.peak_bytes",
        "bytes", "trace",
        "largest single-batch payload observed (the streaming "
        "pipeline's per-chunk memory bound)");
};

BatchMetrics &
batchMetrics()
{
    static BatchMetrics *m = new BatchMetrics();
    return *m;
}

} // anonymous namespace

void
registerBatchMetrics()
{
    batchMetrics();
}

void
noteBatchDecoded(const RequestBatch &batch)
{
    if (obs::timelineEnabled()) {
        obs::emitInstant("trace.batch.decoded");
        obs::emitCounter("trace.batch.bytes",
                         static_cast<double>(batch.byteSize()));
    }
    if (!obs::enabled())
        return;
    BatchMetrics &m = batchMetrics();
    m.batches.add(1);
    m.requests.add(batch.size());
    const auto bytes = static_cast<std::int64_t>(batch.byteSize());
    if (bytes > m.peak_bytes.value())
        m.peak_bytes.set(bytes);
}

bool
MsTraceSource::next(RequestBatch &batch)
{
    batch.clear();
    batch.setTag(tag_);
    const std::vector<Request> &reqs = trace_.requests();
    if (pos_ >= reqs.size())
        return false;
    const std::size_t n =
        std::min(batch.capacity(), reqs.size() - pos_);
    for (std::size_t i = 0; i < n; ++i)
        batch.append(reqs[pos_ + i]);
    pos_ += n;
    noteBatchDecoded(batch);
    return true;
}

Status
drainToTrace(RequestSource &src, MsTrace &out,
             std::size_t batch_requests)
{
    out.setDriveId(src.driveId());
    out.setWindow(src.start(), src.duration());
    RequestBatch batch(batch_requests);
    while (src.next(batch)) {
        for (std::size_t i = 0; i < batch.size(); ++i)
            out.append(batch.get(i));
    }
    return src.status();
}

} // namespace trace
} // namespace dlw
