/**
 * @file
 * Unit tests for synth/spatial.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "synth/spatial.hh"

namespace dlw
{
namespace synth
{
namespace
{

constexpr Lba kCap = 1 << 20;

TEST(UniformSpatial, FitsRequests)
{
    UniformSpatial s(kCap);
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        Lba lba = s.nextLba(rng, 128);
        EXPECT_LE(lba + 128, kCap);
    }
    EXPECT_EQ(s.capacity(), kCap);
}

TEST(UniformSpatial, CoversWholeDevice)
{
    UniformSpatial s(kCap);
    Rng rng(2);
    bool low = false, high = false;
    for (int i = 0; i < 10000; ++i) {
        Lba lba = s.nextLba(rng, 1);
        low |= lba < kCap / 10;
        high |= lba > kCap * 9 / 10;
    }
    EXPECT_TRUE(low);
    EXPECT_TRUE(high);
}

TEST(ZipfHotspot, ConcentratesTraffic)
{
    ZipfHotspot s(kCap, 256, 1.0, 7);
    Rng rng(3);
    std::map<Lba, int> extent_hits;
    const Lba ext = kCap / 256;
    for (int i = 0; i < 100000; ++i)
        ++extent_hits[s.nextLba(rng, 8) / ext];
    // The hottest extent must dwarf the median one.
    int hottest = 0;
    for (auto &[e, n] : extent_hits)
        hottest = std::max(hottest, n);
    EXPECT_GT(hottest, 100000 / 256 * 10);
}

TEST(ZipfHotspot, ZeroSkewRoughlyUniform)
{
    ZipfHotspot s(kCap, 16, 0.0, 7);
    Rng rng(4);
    std::map<Lba, int> extent_hits;
    const Lba ext = kCap / 16;
    for (int i = 0; i < 64000; ++i)
        ++extent_hits[s.nextLba(rng, 1) / ext];
    for (auto &[e, n] : extent_hits)
        EXPECT_NEAR(static_cast<double>(n), 4000.0, 500.0);
}

TEST(ZipfHotspot, PermutationSeedMovesHotspot)
{
    // Different permutation seeds must place the hot extent at
    // different locations (with overwhelming probability).
    Rng rng_a(5), rng_b(5);
    ZipfHotspot a(kCap, 256, 1.2, 1);
    ZipfHotspot b(kCap, 256, 1.2, 2);
    const Lba ext = kCap / 256;
    std::map<Lba, int> ha, hb;
    for (int i = 0; i < 50000; ++i) {
        ++ha[a.nextLba(rng_a, 1) / ext];
        ++hb[b.nextLba(rng_b, 1) / ext];
    }
    auto hottest = [](const std::map<Lba, int> &m) {
        Lba best = 0;
        int n = -1;
        for (auto &[e, c] : m) {
            if (c > n) {
                n = c;
                best = e;
            }
        }
        return best;
    };
    EXPECT_NE(hottest(ha), hottest(hb));
}

TEST(SequentialRuns, HighContinuationIsSequential)
{
    SequentialRuns s(kCap, 0.95);
    Rng rng(6);
    Lba prev_end = 0;
    int sequential = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        Lba lba = s.nextLba(rng, 8);
        if (i > 0 && lba == prev_end)
            ++sequential;
        prev_end = lba + 8;
    }
    EXPECT_GT(static_cast<double>(sequential) / n, 0.9);
}

TEST(SequentialRuns, ZeroContinuationIsRandom)
{
    SequentialRuns s(kCap, 0.0);
    Rng rng(7);
    Lba prev_end = 0;
    int sequential = 0;
    for (int i = 0; i < 10000; ++i) {
        Lba lba = s.nextLba(rng, 8);
        if (i > 0 && lba == prev_end)
            ++sequential;
        prev_end = lba + 8;
    }
    EXPECT_LT(sequential, 10);
}

TEST(SequentialRuns, ResetBreaksRun)
{
    SequentialRuns s(kCap, 0.99);
    Rng r1(8), r2(8);
    Lba a = s.nextLba(r1, 8);
    s.reset();
    Lba b = s.nextLba(r2, 8);
    EXPECT_EQ(a, b); // same rng stream, fresh run both times
}

TEST(SequentialRuns, RestartsAtDeviceEnd)
{
    SequentialRuns s(1000, 0.999);
    Rng rng(9);
    // Long requests quickly reach the end; placements stay valid.
    for (int i = 0; i < 1000; ++i) {
        Lba lba = s.nextLba(rng, 100);
        EXPECT_LE(lba + 100, 1000u);
    }
}

TEST(MixedSpatial, BlendsBehaviours)
{
    auto seq = std::make_unique<SequentialRuns>(kCap, 0.99);
    auto uni = std::make_unique<UniformSpatial>(kCap);
    MixedSpatial mix(std::move(seq), std::move(uni), 0.7);
    Rng rng(10);
    Lba prev_end = 0;
    int sequential = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        Lba lba = mix.nextLba(rng, 8);
        EXPECT_LE(lba + 8, kCap);
        if (i > 0 && lba == prev_end)
            ++sequential;
        prev_end = lba + 8;
    }
    const double frac = static_cast<double>(sequential) / n;
    // Sequential stream continues only when two consecutive draws
    // pick the sequential model: ~0.7 * (0.7 * 0.99) ~ 0.48.
    EXPECT_GT(frac, 0.3);
    EXPECT_LT(frac, 0.65);
    EXPECT_EQ(mix.capacity(), kCap);
}

TEST(SpatialDeathTest, InvalidParameters)
{
    EXPECT_DEATH(UniformSpatial(0), "positive");
    EXPECT_DEATH(ZipfHotspot(kCap, 1, 1.0, 0), "two extents");
    EXPECT_DEATH(SequentialRuns(kCap, 1.0), "\\[0, 1\\)");
    auto a = std::make_unique<UniformSpatial>(100);
    auto b = std::make_unique<UniformSpatial>(200);
    EXPECT_DEATH(MixedSpatial(std::move(a), std::move(b), 0.5),
                 "capacities differ");
}

} // anonymous namespace
} // namespace synth
} // namespace dlw
