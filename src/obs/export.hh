/**
 * @file
 * Snapshot assembly and the three export formats.
 *
 * A Snapshot is one consistent read of the whole observability
 * layer: every registered metric (sorted by name) plus the
 * aggregated span tree.  Exporters are pure functions of the
 * snapshot, so golden tests can render hand-built snapshots:
 *
 *   renderText  aligned human-readable listing (the `run-report`
 *               block and `--metrics=text`)
 *   renderJson  one line of machine-readable JSON (`--metrics=json`,
 *               BENCH_*.json)
 *   renderProm  Prometheus text exposition format, metrics only
 *               (`--metrics=prom`; spans have no Prometheus
 *               equivalent and are omitted)
 *
 * BenchReportGuard gives every bench binary a self-recording perf
 * trajectory: it arms the registry for main()'s lifetime and writes
 * BENCH_<name>.json — wall time plus the full snapshot — on exit.
 */

#ifndef DLW_OBS_EXPORT_HH
#define DLW_OBS_EXPORT_HH

#include <chrono>
#include <string>

#include "common/status.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace dlw
{
namespace obs
{

/**
 * One consistent read of metrics and spans.
 */
struct Snapshot
{
    std::vector<MetricSnapshot> metrics; ///< ascending by name
    SpanStats spans;                     ///< synthetic root
};

/** Snapshot the registry and the span tree. */
Snapshot takeSnapshot();

/** Export format selector for --metrics. */
enum class ExportFormat
{
    kText,
    kJson,
    kProm,
};

/** Parse "text" / "json" / "prom"; InvalidArgument otherwise. */
StatusOr<ExportFormat> parseExportFormat(const std::string &name);

/** Aligned human-readable metrics + span tree. */
std::string renderText(const Snapshot &snap);

/** Single-line JSON object ({"metrics":{...},"spans":{...}}). */
std::string renderJson(const Snapshot &snap);

/** Prometheus text exposition (metrics only, `dlw_` prefix). */
std::string renderProm(const Snapshot &snap);

/** Render in the chosen format. */
std::string render(const Snapshot &snap, ExportFormat format);

/**
 * RAII perf-trajectory recorder for bench binaries.
 *
 * Construct first thing in main(); on destruction writes
 * BENCH_<name>.json into $DLW_BENCH_DIR (default: the working
 * directory) with the run's wall time and the full snapshot.
 */
class BenchReportGuard
{
  public:
    explicit BenchReportGuard(std::string name);
    ~BenchReportGuard();

    BenchReportGuard(const BenchReportGuard &) = delete;
    BenchReportGuard &operator=(const BenchReportGuard &) = delete;

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace obs
} // namespace dlw

#endif // DLW_OBS_EXPORT_HH
