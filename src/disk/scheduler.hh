/**
 * @file
 * Request scheduling policies for the drive's internal queue.
 *
 * FCFS is the baseline; SSTF and the elevator (SCAN) policy reorder
 * by head position, which changes busy time at a fixed arrival rate
 * and therefore shifts the utilization rows of E2's ablation.
 */

#ifndef DLW_DISK_SCHEDULER_HH
#define DLW_DISK_SCHEDULER_HH

#include <cstddef>
#include <vector>

#include "disk/geometry.hh"
#include "qos/tag.hh"
#include "trace/record.hh"

namespace dlw
{
namespace disk
{

/** Queue ordering policy. */
enum class SchedPolicy
{
    Fcfs,
    Sstf,
    Elevator,
};

/** Human-readable policy name. */
const char *schedPolicyName(SchedPolicy policy);

/** A queued request plus its submission index. */
struct QueuedRequest
{
    trace::Request req;
    std::size_t index = 0;
    /** Tenant/class tag of the batch the request arrived in. */
    qos::TagId tag;
};

/**
 * Stateful scheduler: the elevator policy remembers its direction.
 */
class Scheduler
{
  public:
    explicit Scheduler(SchedPolicy policy);

    /** Policy in force. */
    SchedPolicy policy() const { return policy_; }

    /**
     * Choose the next request to service.
     *
     * @param queue        Pending requests (non-empty).
     * @param head_cylinder Current head position.
     * @param geometry     Geometry for LBA-to-cylinder mapping.
     * @return Index into queue of the chosen request.
     */
    std::size_t pick(const std::vector<QueuedRequest> &queue,
                     std::uint64_t head_cylinder,
                     const DiskGeometry &geometry);

  private:
    SchedPolicy policy_;
    /** Elevator sweep direction: true = toward higher cylinders. */
    bool sweep_up_ = true;
};

} // namespace disk
} // namespace dlw

#endif // DLW_DISK_SCHEDULER_HH
