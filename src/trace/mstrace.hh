/**
 * @file
 * The Millisecond trace: per-request records over a window of hours.
 *
 * This is the finest-grained of the paper's three data sets.  The
 * container owns the request sequence plus identifying metadata, and
 * offers the derived views (interarrival times, per-bin counts,
 * read/write splits) that the characterization core consumes.
 */

#ifndef DLW_TRACE_MSTRACE_HH
#define DLW_TRACE_MSTRACE_HH

#include <string>
#include <vector>

#include "common/status.hh"
#include "stats/timeseries.hh"
#include "trace/record.hh"

namespace dlw
{
namespace trace
{

/**
 * A per-request trace for one drive.
 */
class MsTrace
{
  public:
    MsTrace() = default;

    /**
     * @param drive_id Identifier of the traced drive.
     * @param start    Tick of the start of the observation window.
     * @param duration Length of the observation window in ticks.
     */
    MsTrace(std::string drive_id, Tick start, Tick duration);

    /** Identifier of the traced drive. */
    const std::string &driveId() const { return drive_id_; }

    /** Start of the observation window. */
    Tick start() const { return start_; }

    /** Length of the observation window. */
    Tick duration() const { return duration_; }

    /** End of the observation window. */
    Tick end() const { return start_ + duration_; }

    /** Set the metadata fields. */
    void setDriveId(std::string id) { drive_id_ = std::move(id); }
    void setWindow(Tick start, Tick duration);

    /** Append a request (arrivals should be non-decreasing). */
    void append(const Request &req);

    /** Append, growing the window if the arrival falls outside it. */
    void appendExtending(const Request &req);

    /** Number of requests. */
    std::size_t size() const { return reqs_.size(); }

    /** True when the trace holds no requests. */
    bool empty() const { return reqs_.empty(); }

    /** Request i (bounds-checked). */
    const Request &at(std::size_t i) const;

    /** Underlying request vector. */
    const std::vector<Request> &requests() const { return reqs_; }

    /** Sort requests by arrival (needed after merging streams). */
    void sortByArrival();

    /**
     * Validate internal consistency.
     *
     * Checks: arrivals sorted and inside the window, block counts
     * positive.
     *
     * @return Success, or a CorruptData status naming the first
     *         violation.
     */
    Status checkValid() const;

    /**
     * Boolean wrapper around checkValid().
     *
     * @param fail_hard Throw StatusError on violation instead of
     *                  returning.
     * @return True when the trace is consistent.
     */
    bool validate(bool fail_hard = false) const;

    /** Count of read requests. */
    std::size_t readCount() const;

    /** Count of write requests. */
    std::size_t writeCount() const;

    /** Fraction of requests that are reads (0 when empty). */
    double readFraction() const;

    /** Total bytes moved (both directions). */
    std::uint64_t totalBytes() const;

    /** Mean request size in blocks (0 when empty). */
    double meanRequestBlocks() const;

    /** Mean arrival rate in requests per second (0 when empty). */
    double arrivalRate() const;

    /**
     * Interarrival gaps in ticks (length size() - 1).
     *
     * Simultaneous arrivals produce zero gaps, which are preserved.
     */
    std::vector<double> interarrivals() const;

    /**
     * Per-bin request counts.
     *
     * @param bin_width   Bin width in ticks.
     * @param which       Count only reads, only writes, or all.
     * @return Counts series spanning exactly the trace window.
     */
    enum class Filter { All, Reads, Writes };
    stats::BinnedSeries binCounts(Tick bin_width,
                                  Filter which = Filter::All) const;

    /** Per-bin bytes moved. */
    stats::BinnedSeries binBytes(Tick bin_width,
                                 Filter which = Filter::All) const;

    /**
     * Fraction of sequential requests: request i is sequential when
     * its LBA equals the previous request's end LBA.
     */
    double sequentialFraction() const;

  private:
    std::string drive_id_;
    Tick start_ = 0;
    Tick duration_ = 0;
    std::vector<Request> reqs_;
};

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_MSTRACE_HH
