/**
 * @file
 * Kolmogorov-Smirnov goodness-of-fit tests.
 *
 * One-sample (data vs a fitted CDF) and two-sample variants.  The
 * p-value uses the asymptotic Kolmogorov distribution, which is
 * accurate for the sample sizes a trace analysis produces.
 */

#ifndef DLW_STATS_KSTEST_HH
#define DLW_STATS_KSTEST_HH

#include <functional>
#include <vector>

namespace dlw
{
namespace stats
{

/**
 * Result of a Kolmogorov-Smirnov test.
 */
struct KsResult
{
    /** Supremum distance between the two distribution functions. */
    double statistic = 0.0;
    /** Asymptotic p-value of the null "same distribution". */
    double p_value = 0.0;
    /** Effective sample size used for the p-value. */
    double effective_n = 0.0;
};

/**
 * One-sample K-S test of data against a theoretical CDF.
 *
 * @param xs  Samples (any order; copied and sorted internally).
 * @param cdf The hypothesized distribution function.
 * @return Statistic and p-value.
 */
KsResult ksOneSample(const std::vector<double> &xs,
                     const std::function<double(double)> &cdf);

/**
 * Two-sample K-S test.
 *
 * @param xs First sample.
 * @param ys Second sample.
 * @return Statistic and p-value.
 */
KsResult ksTwoSample(const std::vector<double> &xs,
                     const std::vector<double> &ys);

/**
 * Asymptotic Kolmogorov distribution survival function.
 *
 * @param t Scaled statistic sqrt(n) * D.
 * @return P(K > t).
 */
double kolmogorovSurvival(double t);

} // namespace stats
} // namespace dlw

#endif // DLW_STATS_KSTEST_HH
