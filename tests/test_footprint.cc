/**
 * @file
 * Tests for core/footprint spatial analysis.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/footprint.hh"
#include "synth/workload.hh"

namespace dlw
{
namespace core
{
namespace
{

constexpr Lba kCap = 1000000;

trace::MsTrace
traceOf(const std::vector<Lba> &lbas, BlockCount blocks = 8)
{
    trace::MsTrace tr("fp", 0,
                      static_cast<Tick>(lbas.size() + 1) * kMsec);
    Tick at = 0;
    for (Lba lba : lbas) {
        trace::Request r;
        r.arrival = at;
        r.lba = lba;
        r.blocks = blocks;
        r.op = trace::Op::Read;
        tr.append(r);
        at += kMsec;
    }
    return tr;
}

TEST(Footprint, SingleHotSpotConcentrates)
{
    // All requests in one extent.
    std::vector<Lba> lbas(1000, 5000);
    FootprintReport rep = analyzeFootprint(traceOf(lbas), kCap, 100);
    EXPECT_EQ(rep.extents_touched, 1u);
    EXPECT_DOUBLE_EQ(rep.footprint_fraction, 0.01);
    EXPECT_DOUBLE_EQ(rep.top1_share, 1.0);
    EXPECT_DOUBLE_EQ(rep.top10_share, 1.0);
    EXPECT_DOUBLE_EQ(rep.mean_seek_blocks, 8.0); // re-read offset
}

TEST(Footprint, UniformSpreadsWide)
{
    Rng rng(1);
    std::vector<Lba> lbas;
    for (int i = 0; i < 20000; ++i)
        lbas.push_back(static_cast<Lba>(
            rng.uniformInt(0, kCap - 8)));
    FootprintReport rep = analyzeFootprint(traceOf(lbas), kCap, 100);
    EXPECT_GT(rep.footprint_fraction, 0.99);
    EXPECT_NEAR(rep.top10_share, 0.10, 0.02);
    EXPECT_LT(rep.extent_gini, 0.15);
    EXPECT_NEAR(rep.mean_seek_blocks, kCap / 3.0, kCap / 20.0);
}

TEST(Footprint, SequentialRunsMeasured)
{
    // Two runs of 5 sequential requests each.
    std::vector<Lba> lbas;
    for (int r = 0; r < 2; ++r) {
        Lba base = r == 0 ? 0 : 500000;
        for (int i = 0; i < 5; ++i)
            lbas.push_back(base + static_cast<Lba>(i) * 8);
    }
    FootprintReport rep = analyzeFootprint(traceOf(lbas), kCap, 100);
    EXPECT_EQ(rep.longest_run_requests, 5u);
    EXPECT_DOUBLE_EQ(rep.mean_run_requests, 5.0);
}

TEST(Footprint, EmptyTraceSafe)
{
    trace::MsTrace tr("fp", 0, kSec);
    FootprintReport rep = analyzeFootprint(tr, kCap, 100);
    EXPECT_EQ(rep.extents_touched, 0u);
    EXPECT_DOUBLE_EQ(rep.footprint_fraction, 0.0);
    EXPECT_DOUBLE_EQ(rep.top1_share, 0.0);
}

TEST(Footprint, ZipfWorkloadIsConcentrated)
{
    Rng rng(2);
    synth::Workload oltp = synth::Workload::makeOltp(kCap, 200.0);
    trace::MsTrace tr = oltp.generate(rng, "z", 0, 60 * kSec);
    FootprintReport zipf = analyzeFootprint(tr, kCap);

    synth::Workload uni;
    uni.setArrival(std::make_unique<synth::PoissonArrivals>(200.0));
    uni.setSize(std::make_unique<synth::FixedSize>(8));
    uni.setSpatial(std::make_unique<synth::UniformSpatial>(kCap));
    uni.setMix(0.67);
    trace::MsTrace tu = uni.generate(rng, "u", 0, 60 * kSec);
    FootprintReport flat = analyzeFootprint(tu, kCap);

    EXPECT_GT(zipf.top10_share, flat.top10_share * 2.0);
    EXPECT_GT(zipf.extent_gini, flat.extent_gini + 0.2);
}

TEST(Footprint, StreamingHasLongRunsAndShortSeeks)
{
    Rng rng(3);
    synth::Workload s = synth::Workload::makeStreaming(kCap, 50.0);
    trace::MsTrace tr = s.generate(rng, "s", 0, 60 * kSec);
    FootprintReport rep = analyzeFootprint(tr, kCap);
    EXPECT_GT(rep.mean_run_requests, 20.0);
    EXPECT_LT(rep.mean_seek_blocks, kCap / 20.0);
}

TEST(FootprintDeathTest, BadInputs)
{
    trace::MsTrace tr("fp", 0, kSec);
    EXPECT_DEATH(analyzeFootprint(tr, 0), "positive");
    EXPECT_DEATH(analyzeFootprint(tr, kCap, 5), "ten extents");
    trace::Request r;
    r.arrival = 0;
    r.lba = kCap;
    r.blocks = 8;
    r.op = trace::Op::Read;
    tr.append(r);
    EXPECT_DEATH(analyzeFootprint(tr, kCap), "beyond stated capacity");
}

} // anonymous namespace
} // namespace core
} // namespace dlw
