/**
 * @file
 * Quickstart: the whole pipeline in one page.
 *
 * 1. Describe a workload (arrival process + sizes + locality + mix).
 * 2. Render it into a Millisecond trace.
 * 3. Service the trace through the disk-drive model.
 * 4. Characterize utilization, idleness, and burstiness.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "common/rng.hh"
#include "common/strutil.hh"
#include "core/characterize.hh"
#include "disk/drive.hh"
#include "synth/workload.hh"

int
main()
{
    using namespace dlw;

    // A 146 GiB 15k-RPM enterprise drive with its default cache.
    disk::DriveConfig config = disk::DriveConfig::makeEnterprise();

    // An OLTP-style workload: bursty arrivals, 4 KiB pages on Zipf
    // hotspots, two reads per write.
    synth::Workload workload = synth::Workload::makeOltp(
        config.geometry.capacityBlocks(), /*rate=*/75.0);

    // Ten minutes of traffic, fully reproducible from the seed.
    Rng rng(2009);
    trace::MsTrace tr =
        workload.generate(rng, "quickstart-drive", 0, 10 * kMinute);
    std::cout << "generated " << tr.size() << " requests ("
              << formatBytes(static_cast<double>(tr.totalBytes()))
              << ", " << formatDouble(100.0 * tr.readFraction(), 1)
              << "% reads)\n";

    // Replay through the drive: every seek, rotation, transfer,
    // cache hit, and background destage is simulated.
    disk::DiskDrive drive(config);
    disk::ServiceLog log = drive.service(tr);
    std::cout << "serviced: utilization "
              << formatDouble(100.0 * log.utilization(), 1)
              << "%, mean response "
              << formatDouble(log.meanResponse() /
                                  static_cast<double>(kMsec), 2)
              << " ms, cache hits " << log.read_hits
              << ", buffered writes " << log.buffered_writes << "\n\n";

    // The paper's multi-scale characterization, rendered as a table.
    core::DriveCharacterization report = core::characterizeMs(tr, log);
    std::cout << report.render();
    return 0;
}
