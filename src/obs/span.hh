/**
 * @file
 * Scoped pipeline-stage timing organized as a span tree.
 *
 * A ScopedSpan marks one stage of a pipeline (open -> parse ->
 * characterize -> merge); spans opened while another span is live on
 * the same thread become its children, so the aggregated tree reads
 * like a profile of the pipeline:
 *
 *     fleet.run                 1x   2.13 s
 *       fleet.shard            64x   2.05 s
 *         generate             64x   0.41 s
 *         service              64x   1.44 s
 *         characterize         64x   0.19 s
 *       fleet.merge             1x   0.01 s
 *
 * Aggregation is by name path: all 64 "fleet.shard" spans fold into
 * one node with count 64, whichever threads ran them.  Span *counts*
 * are therefore deterministic at any thread count; totals are wall
 * time and obviously are not.
 *
 * Cost model matches the metrics registry: while disarmed
 * (obs::enable() not active) constructing a span is one relaxed
 * atomic load per sink family (metrics, timeline) and no clock
 * read.  While armed, each span end takes a global tree mutex —
 * spans mark stage boundaries (file reads, whole drives), never
 * per-record work, so the lock is uncontended in practice.
 *
 * Spans are also the timeline's duration events: while the timeline
 * recorder is armed (obs/timeline.hh), every ScopedSpan emits a
 * begin event at construction and an end event at destruction into
 * the per-thread ring, so arming tracing requires no call-site
 * changes anywhere spans already exist.
 */

#ifndef DLW_OBS_SPAN_HH
#define DLW_OBS_SPAN_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dlw
{
namespace obs
{

/**
 * Aggregated statistics of one span-tree node.
 */
struct SpanStats
{
    std::string name;
    std::uint64_t count = 0; ///< completed spans at this path
    double total_s = 0.0;    ///< summed wall time
    double min_s = 0.0;
    double max_s = 0.0;
    /** Child nodes, ascending by name (deterministic order). */
    std::vector<SpanStats> children;
};

/**
 * RAII stage timer; nests into the per-thread span stack.
 */
class ScopedSpan
{
  public:
    /**
     * @param name Stage name; must outlive the span (string
     *             literals).
     */
    explicit ScopedSpan(const char *name);

    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    bool armed_ = false;    ///< metrics sink live at construction
    bool tl_armed_ = false; ///< timeline recorder live at construction
    const char *name_ = nullptr;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Deep copy of the aggregated span tree.
 *
 * @return A synthetic root node (empty name, zero stats) whose
 *         children are the top-level spans.
 */
SpanStats spanSnapshot();

/** Discard the aggregated tree (tests and per-run isolation). */
void resetSpans();

} // namespace obs
} // namespace dlw

#endif // DLW_OBS_SPAN_HH
