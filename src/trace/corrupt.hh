/**
 * @file
 * Deterministic trace manglers for recovery testing.
 *
 * The torture harness needs corrupt inputs whose damage is exactly
 * reproducible, so every mangler here is a pure function of
 * (input bytes, CorruptSpec): the same spec applied to the same file
 * always yields the same corruption.  `dlwtool corrupt` exposes these
 * on the command line for write → corrupt → ingest → verify-recovery
 * round trips, and tests/test_faults.cc drives them directly.
 *
 * Byte-level modes (truncate, bitflip) work on any format; the
 * line-level modes (garbage, dup, reorder) assume a dlw CSV layout
 * and never touch the first two header lines, so the damage lands in
 * record data where the RecordPolicy machinery can react to it.
 */

#ifndef DLW_TRACE_CORRUPT_HH
#define DLW_TRACE_CORRUPT_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hh"

namespace dlw
{
namespace trace
{

/** What kind of damage to inflict. */
enum class CorruptMode
{
    /** Cut the buffer at a random point in the middle half. */
    kTruncate,
    /** Flip one random bit per event. */
    kBitFlip,
    /** Replace one random field of a record line with garbage. */
    kFieldGarbage,
    /** Duplicate a record line in place (repeated timestamps). */
    kDupTimestamp,
    /** Swap two record lines (out-of-order timestamps). */
    kReorder,
};

/** Short stable name of a mode ("truncate", "bitflip", ...). */
const char *corruptModeName(CorruptMode mode);

/** Parse a mode name; unknown names yield InvalidArgument. */
StatusOr<CorruptMode> parseCorruptMode(std::string_view name);

/** Deterministic description of one corruption run. */
struct CorruptSpec
{
    CorruptMode mode = CorruptMode::kBitFlip;
    /** Seed of the damage stream. */
    std::uint64_t seed = 1;
    /** Number of damage events (ignored by truncate). */
    std::size_t count = 1;
    /**
     * Bytes at the head of the buffer to spare.  Byte-level modes
     * never damage [0, offset); use it to keep a binary header
     * parseable while mangling the record area.
     */
    std::size_t offset = 0;
};

/**
 * Apply the spec to a whole-file buffer.
 *
 * @param in   Original file contents.
 * @param spec What to damage and how, keyed by spec.seed.
 * @return The damaged bytes, or InvalidArgument when the buffer is
 *         too small to damage as requested (e.g. nothing beyond the
 *         spared offset, or no record lines for a line-level mode).
 */
StatusOr<std::string> corruptBuffer(const std::string &in,
                                    const CorruptSpec &spec);

/** Read in_path, damage it per spec, write out_path. */
Status corruptFile(const std::string &in_path,
                   const std::string &out_path,
                   const CorruptSpec &spec);

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_CORRUPT_HH
