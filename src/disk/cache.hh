/**
 * @file
 * Drive cache: segmented read look-ahead plus a write-back buffer.
 *
 * Enterprise drives of the paper's era carried 8-16 MiB of cache
 * split into read segments (sequential look-ahead) and a write
 * buffer that acknowledges writes before media access and destages
 * them during idle periods.  Both behaviours reshape the busy/idle
 * structure the characterization measures, which is why the cache is
 * an explicit, switchable component (the E4 idle-time ablation).
 */

#ifndef DLW_DISK_CACHE_HH
#define DLW_DISK_CACHE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"

namespace dlw
{
namespace disk
{

/**
 * Cache sizing and behaviour knobs.
 */
struct CacheConfig
{
    /** Master switch; when false every access is mechanical. */
    bool enabled = true;
    /** Number of read look-ahead segments. */
    std::uint32_t segments = 16;
    /** Blocks prefetched past the end of each read. */
    BlockCount prefetch_blocks = 512;
    /** Write-buffer capacity in blocks. */
    BlockCount write_buffer_blocks = 16384;
};

/** A dirty extent awaiting destage. */
struct DirtyExtent
{
    Lba lba = 0;
    BlockCount blocks = 0;
};

/**
 * Cache state machine used by the drive engine.
 */
class DiskCache
{
  public:
    explicit DiskCache(const CacheConfig &config);

    /** Configuration in force. */
    const CacheConfig &config() const { return config_; }

    /**
     * Look up a read.
     *
     * A hit refreshes the segment's LRU stamp, so the query mutates
     * cache state.
     *
     * @param lba    First block of the read.
     * @param blocks Length of the read.
     * @return True on a full segment hit (no mechanical work).
     */
    bool readHit(Lba lba, BlockCount blocks);

    /**
     * Install/refresh the segment covering a completed media read
     * with its look-ahead extension (LRU replacement).
     */
    void installReadSegment(Lba lba, BlockCount blocks);

    /** True when the write buffer can absorb this many blocks. */
    bool canBuffer(BlockCount blocks) const;

    /**
     * Buffer a write and invalidate overlapping read segments.
     *
     * @pre canBuffer(blocks).
     */
    void bufferWrite(Lba lba, BlockCount blocks);

    /** True when dirty data awaits destage. */
    bool dirty() const { return !dirty_.empty(); }

    /** Total dirty blocks buffered. */
    BlockCount dirtyBlocks() const { return dirty_blocks_; }

    /** Number of dirty extents queued. */
    std::size_t dirtyExtents() const { return dirty_.size(); }

    /**
     * Pop the oldest dirty extent for destaging.
     *
     * @pre dirty().
     */
    DirtyExtent popDestage();

    /** Drop all cache state (e.g. on power cycle). */
    void clear();

  private:
    struct Segment
    {
        Lba start = 0;
        Lba end = 0;
        std::uint64_t last_use = 0;
        bool valid = false;
    };

    void invalidateOverlapping(Lba lba, BlockCount blocks);

    CacheConfig config_;
    std::vector<Segment> segments_;
    std::deque<DirtyExtent> dirty_;
    BlockCount dirty_blocks_ = 0;
    std::uint64_t use_clock_ = 0;
};

} // namespace disk
} // namespace dlw

#endif // DLW_DISK_CACHE_HH
