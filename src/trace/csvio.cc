#include "trace/csvio.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/fault.hh"
#include "common/strutil.hh"
#include "obs/span.hh"
#include "trace/gate.hh"
#include "trace/source.hh"
#include "trace/stream.hh"

namespace dlw
{
namespace trace
{

namespace
{

Status
openIn(const std::string &path, std::ifstream &is)
{
    obs::ScopedSpan span("ingest.open");
    if (FAULT_POINT("trace.open")) {
        return Status::ioError("injected fault at trace.open on '" +
                               path + "'");
    }
    is.open(path);
    if (!is)
        return Status::ioError("cannot open '" + path + "' for reading");
    return Status();
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        throw StatusError(Status::ioError("cannot open '" + path +
                                          "' for writing"));
    }
    return os;
}

std::string
atLine(std::size_t lineno, const std::string &what)
{
    std::ostringstream os;
    os << "line " << lineno << ": " << what;
    return os.str();
}

} // anonymous namespace

void
writeMsCsv(std::ostream &os, const MsTrace &trace)
{
    os << "# dlw-ms-v1," << trace.driveId() << ','
       << trace.start() << ',' << trace.duration() << '\n';
    os << "arrival_ns,lba,blocks,op\n";
    for (const Request &r : trace.requests()) {
        os << r.arrival << ',' << r.lba << ',' << r.blocks << ','
           << (r.isRead() ? 'R' : 'W') << '\n';
    }
}

void
writeMsCsv(const std::string &path, const MsTrace &trace)
{
    auto os = openOut(path);
    writeMsCsv(os, trace);
}

StatusOr<MsTrace>
readMsCsv(std::istream &is, const IngestOptions &opts,
          IngestStats *stats)
{
    return drainMsSource(openMsCsvSource(is, opts), stats);
}

StatusOr<MsTrace>
readMsCsv(const std::string &path, const IngestOptions &opts,
          IngestStats *stats)
{
    return drainMsSource(openMsCsvSource(path, opts), stats);
}

MsTrace
readMsCsv(std::istream &is)
{
    return readMsCsv(is, IngestOptions{}).valueOrThrow();
}

MsTrace
readMsCsv(const std::string &path)
{
    return readMsCsv(path, IngestOptions{}).valueOrThrow();
}

void
writeHourCsv(std::ostream &os, const HourTrace &trace)
{
    os << "# dlw-hour-v1," << trace.driveId() << ','
       << trace.start() << '\n';
    os << "hour,reads,writes,read_blocks,write_blocks,busy_ns\n";
    for (std::size_t h = 0; h < trace.hours(); ++h) {
        const HourBucket &b = trace.at(h);
        os << h << ',' << b.reads << ',' << b.writes << ','
           << b.read_blocks << ',' << b.write_blocks << ','
           << b.busy << '\n';
    }
}

void
writeHourCsv(const std::string &path, const HourTrace &trace)
{
    auto os = openOut(path);
    writeHourCsv(os, trace);
}

StatusOr<HourTrace>
readHourCsv(std::istream &is, const IngestOptions &opts,
            IngestStats *stats)
{
    Gate gate{opts, {}};
    IngestMetricsScope obs_scope(gate.st);
    auto fail = [&](Status s) -> StatusOr<HourTrace> {
        if (stats)
            *stats = gate.st;
        return s;
    };

    std::string line;
    if (!std::getline(is, line))
        return fail(Status::truncated("empty hour-trace CSV"));
    auto head = split(trim(line), ',');
    std::int64_t start = 0;
    if (head.size() != 3 || head[0] != "# dlw-hour-v1" ||
        !tryParseInt(head[2], start)) {
        return fail(Status::corruptData("bad hour-trace header '" +
                                        trim(line) + "'"));
    }
    HourTrace trace(head[1], start);
    if (!std::getline(is, line)) {
        return fail(
            Status::truncated("truncated CSV: missing column header"));
    }

    std::size_t lineno = 2;
    while (std::getline(is, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty())
            continue;
        const std::size_t record_bytes = line.size() + 1;

        std::string why;
        bool was_clamped = false;
        std::uint64_t h = 0;
        HourBucket b;
        if (FAULT_POINT("trace.read.record")) {
            why = atLine(lineno, "injected fault at trace.read.record");
        } else {
            auto f = split(t, ',');
            if (f.size() != 6) {
                why = atLine(lineno, "expected 6 fields");
            } else if (!tryParseUint(f[0], h) ||
                       !tryParseUint(f[1], b.reads) ||
                       !tryParseUint(f[2], b.writes) ||
                       !tryParseUint(f[3], b.read_blocks) ||
                       !tryParseUint(f[4], b.write_blocks) ||
                       !tryParseInt(f[5], b.busy)) {
                why = atLine(lineno, "malformed field");
            } else if (b.busy < 0 || b.busy > kHour) {
                if (gate.clampMode()) {
                    b.busy = b.busy < 0 ? 0 : kHour;
                    was_clamped = true;
                }
                why = atLine(lineno, "busy time outside [0, 1h]");
            }
        }

        if (!why.empty()) {
            Status s = gate.corrupt(why);
            if (!s.ok())
                return fail(std::move(s));
            if (!was_clamped) {
                gate.skip();
                continue;
            }
            gate.clamped();
        }
        trace.bucketFor(static_cast<std::size_t>(h)) = b;
        gate.accept(record_bytes);
    }
    if (stats)
        *stats = gate.st;
    return trace;
}

StatusOr<HourTrace>
readHourCsv(const std::string &path, const IngestOptions &opts,
            IngestStats *stats)
{
    std::ifstream is;
    Status s = openIn(path, is);
    if (!s.ok())
        return s;
    StatusOr<HourTrace> r = readHourCsv(is, opts, stats);
    if (!r.ok()) {
        Status e = r.status();
        return e.withContext("reading '" + path + "'");
    }
    return r;
}

HourTrace
readHourCsv(std::istream &is)
{
    return readHourCsv(is, IngestOptions{}).valueOrThrow();
}

HourTrace
readHourCsv(const std::string &path)
{
    return readHourCsv(path, IngestOptions{}).valueOrThrow();
}

void
writeLifetimeCsv(std::ostream &os, const LifetimeTrace &trace)
{
    os << "# dlw-lifetime-v1," << trace.family() << '\n';
    os << "drive_id,power_on_ns,busy_ns,reads,writes,read_blocks,"
          "write_blocks,peak_hour_requests,saturated_hours,"
          "longest_saturated_run\n";
    for (const LifetimeRecord &r : trace.records()) {
        os << r.drive_id << ',' << r.power_on << ',' << r.busy << ','
           << r.reads << ',' << r.writes << ',' << r.read_blocks << ','
           << r.write_blocks << ',' << r.peak_hour_requests << ','
           << r.saturated_hours << ',' << r.longest_saturated_run
           << '\n';
    }
}

void
writeLifetimeCsv(const std::string &path, const LifetimeTrace &trace)
{
    auto os = openOut(path);
    writeLifetimeCsv(os, trace);
}

StatusOr<LifetimeTrace>
readLifetimeCsv(std::istream &is, const IngestOptions &opts,
                IngestStats *stats)
{
    Gate gate{opts, {}};
    IngestMetricsScope obs_scope(gate.st);
    auto fail = [&](Status s) -> StatusOr<LifetimeTrace> {
        if (stats)
            *stats = gate.st;
        return s;
    };

    std::string line;
    if (!std::getline(is, line))
        return fail(Status::truncated("empty lifetime-trace CSV"));
    auto head = split(trim(line), ',');
    if (head.size() != 2 || head[0] != "# dlw-lifetime-v1") {
        return fail(Status::corruptData("bad lifetime-trace header '" +
                                        trim(line) + "'"));
    }
    LifetimeTrace trace(head[1]);
    if (!std::getline(is, line)) {
        return fail(
            Status::truncated("truncated CSV: missing column header"));
    }

    std::size_t lineno = 2;
    while (std::getline(is, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty())
            continue;
        const std::size_t record_bytes = line.size() + 1;

        std::string why;
        bool was_clamped = false;
        LifetimeRecord r;
        if (FAULT_POINT("trace.read.record")) {
            why = atLine(lineno, "injected fault at trace.read.record");
        } else {
            auto f = split(t, ',');
            if (f.size() != 10) {
                why = atLine(lineno, "expected 10 fields");
            } else if (!tryParseInt(f[1], r.power_on) ||
                       !tryParseInt(f[2], r.busy) ||
                       !tryParseUint(f[3], r.reads) ||
                       !tryParseUint(f[4], r.writes) ||
                       !tryParseUint(f[5], r.read_blocks) ||
                       !tryParseUint(f[6], r.write_blocks) ||
                       !tryParseUint(f[7], r.peak_hour_requests) ||
                       !tryParseUint(f[8], r.saturated_hours) ||
                       !tryParseUint(f[9], r.longest_saturated_run)) {
                why = atLine(lineno, "malformed field");
            } else {
                r.drive_id = trim(f[0]);
                // Domain repairs exist only under the clamp policy;
                // the other policies pass domain issues through to
                // validate(), as the seed reader did.
                if (gate.clampMode()) {
                    if (r.power_on < 0) {
                        r.power_on = 0;
                        was_clamped = true;
                    }
                    if (r.busy < 0 || r.busy > r.power_on) {
                        r.busy = r.busy < 0 ? 0 : r.power_on;
                        was_clamped = true;
                    }
                    if (r.longest_saturated_run > r.saturated_hours) {
                        r.longest_saturated_run = r.saturated_hours;
                        was_clamped = true;
                    }
                    if (was_clamped) {
                        why = atLine(lineno,
                                     "counters outside their domain");
                    }
                }
            }
        }

        if (!why.empty()) {
            Status s = gate.corrupt(why);
            if (!s.ok())
                return fail(std::move(s));
            if (!was_clamped) {
                gate.skip();
                continue;
            }
            gate.clamped();
        }
        trace.append(std::move(r));
        gate.accept(record_bytes);
    }
    if (stats)
        *stats = gate.st;
    return trace;
}

StatusOr<LifetimeTrace>
readLifetimeCsv(const std::string &path, const IngestOptions &opts,
                IngestStats *stats)
{
    std::ifstream is;
    Status s = openIn(path, is);
    if (!s.ok())
        return s;
    StatusOr<LifetimeTrace> r = readLifetimeCsv(is, opts, stats);
    if (!r.ok()) {
        Status e = r.status();
        return e.withContext("reading '" + path + "'");
    }
    return r;
}

LifetimeTrace
readLifetimeCsv(std::istream &is)
{
    return readLifetimeCsv(is, IngestOptions{}).valueOrThrow();
}

LifetimeTrace
readLifetimeCsv(const std::string &path)
{
    return readLifetimeCsv(path, IngestOptions{}).valueOrThrow();
}

} // namespace trace
} // namespace dlw
