/**
 * @file
 * Unit tests for stats/kstest.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/fit.hh"
#include "stats/kstest.hh"

namespace dlw
{
namespace stats
{
namespace
{

TEST(Kolmogorov, SurvivalEndpoints)
{
    EXPECT_DOUBLE_EQ(kolmogorovSurvival(0.0), 1.0);
    EXPECT_NEAR(kolmogorovSurvival(10.0), 0.0, 1e-12);
    // Known value: Q(1.36) ~ 0.05 (the classic 5% critical point).
    EXPECT_NEAR(kolmogorovSurvival(1.36), 0.05, 0.003);
}

TEST(KsOneSample, AcceptsOwnDistribution)
{
    Rng rng(1);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i)
        xs.push_back(rng.exponential(2.0));
    auto r = ksOneSample(xs, [](double x) {
        return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / 2.0);
    });
    EXPECT_LT(r.statistic, 0.03);
    EXPECT_GT(r.p_value, 0.01);
}

TEST(KsOneSample, RejectsWrongDistribution)
{
    Rng rng(2);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i)
        xs.push_back(rng.lognormal(0.0, 1.5));
    // Exponential with matched mean is still very wrong.
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    auto r = ksOneSample(xs, [mean](double x) {
        return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / mean);
    });
    EXPECT_GT(r.statistic, 0.1);
    EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsOneSample, WorksWithFittedDist)
{
    Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i)
        xs.push_back(rng.weibull(1.5, 3.0));
    auto f = fitDistribution(DistFamily::Weibull, xs);
    auto r = ksOneSample(xs, [&f](double x) { return f.cdf(x); });
    EXPECT_LT(r.statistic, 0.03);
}

TEST(KsTwoSample, SameSourceAccepted)
{
    Rng rng(4);
    std::vector<double> a, b;
    for (int i = 0; i < 3000; ++i) {
        a.push_back(rng.normal(0.0, 1.0));
        b.push_back(rng.normal(0.0, 1.0));
    }
    auto r = ksTwoSample(a, b);
    EXPECT_LT(r.statistic, 0.05);
    EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTwoSample, ShiftedSourceRejected)
{
    Rng rng(5);
    std::vector<double> a, b;
    for (int i = 0; i < 3000; ++i) {
        a.push_back(rng.normal(0.0, 1.0));
        b.push_back(rng.normal(0.8, 1.0));
    }
    auto r = ksTwoSample(a, b);
    EXPECT_GT(r.statistic, 0.2);
    EXPECT_LT(r.p_value, 1e-10);
}

TEST(KsTwoSample, UnequalSizes)
{
    Rng rng(6);
    std::vector<double> a, b;
    for (int i = 0; i < 5000; ++i)
        a.push_back(rng.uniform());
    for (int i = 0; i < 500; ++i)
        b.push_back(rng.uniform());
    auto r = ksTwoSample(a, b);
    EXPECT_GT(r.p_value, 0.01);
    EXPECT_NEAR(r.effective_n, 5000.0 * 500.0 / 5500.0, 1e-9);
}

TEST(KsDeathTest, EmptyInput)
{
    std::vector<double> empty, one = {1.0};
    EXPECT_DEATH(ksOneSample(empty, [](double) { return 0.5; }),
                 "needs data");
    EXPECT_DEATH(ksTwoSample(empty, one), "needs data");
}

} // anonymous namespace
} // namespace stats
} // namespace dlw
