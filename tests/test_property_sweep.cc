/**
 * @file
 * Randomized property sweep: for a grid of workload classes, seeds,
 * and drive configurations, the end-to-end pipeline must uphold its
 * invariants.  This is the wide net that catches interactions the
 * targeted unit tests miss.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/idleness.hh"
#include "core/utilization.hh"
#include "disk/drive.hh"
#include "synth/workload.hh"
#include "trace/aggregate.hh"

namespace dlw
{
namespace
{

enum class Wl
{
    Oltp,
    FileServer,
    Streaming,
    Backup,
};

const char *
wlName(Wl w)
{
    switch (w) {
      case Wl::Oltp:
        return "oltp";
      case Wl::FileServer:
        return "fileserver";
      case Wl::Streaming:
        return "streaming";
      case Wl::Backup:
        return "backup";
    }
    return "?";
}

synth::Workload
build(Wl wl, Lba cap, double rate, std::uint64_t seed)
{
    switch (wl) {
      case Wl::Oltp:
        return synth::Workload::makeOltp(cap, rate, seed);
      case Wl::FileServer:
        return synth::Workload::makeFileServer(cap, rate, seed);
      case Wl::Streaming:
        return synth::Workload::makeStreaming(cap, rate);
      case Wl::Backup:
        return synth::Workload::makeBackup(cap, rate);
    }
    dlw_panic("unreachable");
}

using SweepParam =
    std::tuple<Wl, std::uint64_t /*seed*/, bool /*cache*/,
               disk::SchedPolicy>;

class PipelineSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(PipelineSweep, InvariantsHold)
{
    const auto [wl, seed, cache, sched] = GetParam();
    SCOPED_TRACE(wlName(wl));

    disk::DriveConfig cfg = disk::DriveConfig::makeEnterprise();
    cfg.cache.enabled = cache;
    cfg.sched = sched;

    Rng rng(seed);
    synth::Workload w =
        build(wl, cfg.geometry.capacityBlocks(), 50.0, seed);
    trace::MsTrace tr = w.generate(rng, "sweep", 0, 10 * kSec);
    ASSERT_TRUE(tr.validate());

    disk::DiskDrive drive(cfg);
    disk::ServiceLog log = drive.service(tr);

    // 1. Every request completes exactly once, never before arrival.
    ASSERT_EQ(log.completions.size(), tr.size());
    std::vector<bool> seen(tr.size(), false);
    for (const disk::Completion &c : log.completions) {
        ASSERT_LT(c.index, tr.size());
        EXPECT_FALSE(seen[c.index]);
        seen[c.index] = true;
        EXPECT_GE(c.finish, c.arrival);
        EXPECT_GE(c.start, c.arrival);
        EXPECT_GE(c.finish, c.start);
    }

    // 2. Busy intervals are sorted, disjoint, inside the window.
    for (std::size_t i = 0; i < log.busy.size(); ++i) {
        EXPECT_LT(log.busy[i].first, log.busy[i].second);
        EXPECT_GE(log.busy[i].first, log.window_start);
        EXPECT_LE(log.busy[i].second, log.window_end);
        if (i > 0) {
            EXPECT_GT(log.busy[i].first, log.busy[i - 1].second);
        }
    }

    // 3. Busy + idle == window; utilization in [0, 1].
    Tick idle = 0;
    for (Tick g : log.idleIntervals())
        idle += g;
    EXPECT_EQ(idle + log.busyTime(),
              log.window_end - log.window_start);
    EXPECT_GE(log.utilization(), 0.0);
    EXPECT_LE(log.utilization(), 1.0);

    // 4. Aggregation identities hold.
    trace::HourTrace ht = trace::msToHour(tr, log.busy);
    EXPECT_TRUE(trace::consistentMsHour(tr, ht));
    trace::LifetimeRecord life = trace::hourToLifetime(ht);
    EXPECT_TRUE(trace::consistentHourLifetime(ht, life));

    // 5. Utilization profiles bounded at every scale.
    for (Tick width : {100 * kMsec, kSec}) {
        core::UtilizationProfile p =
            core::utilizationProfile(log, width);
        EXPECT_GE(p.mean, 0.0);
        EXPECT_LE(p.peak, 1.0 + 1e-9);
    }

    // 6. Idleness mass function is a valid survival curve.
    core::IdlenessAnalysis ia(log);
    double prev = 1.0;
    for (Tick t : {kMsec, 10 * kMsec, 100 * kMsec, kSec}) {
        const double m = ia.idleMassAtLeast(t);
        EXPECT_LE(m, prev + 1e-12);
        EXPECT_GE(m, 0.0);
        prev = m;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ClassesSeedsConfigs, PipelineSweep,
    ::testing::Combine(
        ::testing::Values(Wl::Oltp, Wl::FileServer, Wl::Streaming,
                          Wl::Backup),
        ::testing::Values(1u, 7u, 1234u),
        ::testing::Values(true, false),
        ::testing::Values(disk::SchedPolicy::Fcfs,
                          disk::SchedPolicy::Sstf,
                          disk::SchedPolicy::Elevator)));

} // anonymous namespace
} // namespace dlw
