/**
 * @file
 * Unit tests for the timeline flight recorder: disarmed no-op
 * semantics, ring wraparound, Chrome trace_event golden export,
 * begin/end pairing, the signal-safe dump, and the fleet
 * thread-count invariance of deterministic event counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "fleet/pipeline.hh"
#include "obs/benchdiff.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/timeline.hh"
#include "obs/timeline_export.hh"

namespace dlw
{
namespace obs
{
namespace
{

/** RAII enable/disable around one test body. */
struct ScopedTimeline
{
    explicit ScopedTimeline(
        std::size_t capacity = kDefaultTimelineCapacity)
    {
        resetTimeline();
        enableTimeline(capacity);
    }
    ~ScopedTimeline() { disableTimeline(); }
};

// ---------------------------------------------------------------------------
// Recorder primitives.

TEST(Timeline, DisarmedEmitIsNoOp)
{
    resetTimeline();
    ASSERT_FALSE(timelineEnabled());
    emitInstant("test.never");
    emitCounter("test.never.value", 7.0);
    emitBegin("test.never.span");
    emitEnd("test.never.span");
    const TimelineSnapshot snap = timelineSnapshot();
    EXPECT_TRUE(snap.events.empty());
    EXPECT_EQ(snap.threads, 0u);
}

TEST(Timeline, ArmedEmitRecords)
{
    ScopedTimeline on;
    emitInstant("test.tick");
    emitCounter("test.depth", 3.0);
    const TimelineSnapshot snap = timelineSnapshot();
    ASSERT_EQ(snap.events.size(), 2u);
    EXPECT_STREQ(snap.events[0].name, "test.tick");
    EXPECT_EQ(snap.events[0].kind, TimelineEventKind::kInstant);
    EXPECT_STREQ(snap.events[1].name, "test.depth");
    EXPECT_EQ(snap.events[1].kind, TimelineEventKind::kCounter);
    EXPECT_DOUBLE_EQ(snap.events[1].value, 3.0);
    // Same thread, monotone clock.
    EXPECT_EQ(snap.events[0].tid, snap.events[1].tid);
    EXPECT_LE(snap.events[0].ts_ns, snap.events[1].ts_ns);
    EXPECT_EQ(snap.threads, 1u);
}

TEST(Timeline, RingWraparoundKeepsNewest)
{
    TimelineRing ring(4, 9);
    for (std::uint64_t i = 0; i < 10; ++i)
        ring.push("e", TimelineEventKind::kInstant,
                  static_cast<double>(i), 100 * i);
    EXPECT_EQ(ring.pushed(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);
    EXPECT_EQ(ring.capacity(), 4u);

    std::vector<TimelineEvent> out;
    ring.snapshotInto(out);
    ASSERT_EQ(out.size(), 4u);
    // Oldest-first, and only the newest four survive.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(out[i].ts_ns, 100 * (6 + i));
        EXPECT_DOUBLE_EQ(out[i].value, static_cast<double>(6 + i));
        EXPECT_EQ(out[i].tid, 9u);
    }
}

TEST(Timeline, RingBelowCapacityDropsNothing)
{
    TimelineRing ring(8, 0);
    ring.push("a", TimelineEventKind::kInstant, 0.0, 10);
    ring.push("b", TimelineEventKind::kInstant, 0.0, 20);
    EXPECT_EQ(ring.dropped(), 0u);
    std::vector<TimelineEvent> out;
    ring.snapshotInto(out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_STREQ(out[0].name, "a");
    EXPECT_STREQ(out[1].name, "b");
}

TEST(Timeline, SnapshotReportsWraparoundDrops)
{
    ScopedTimeline on(4);
    // A fresh capacity only applies to rings created after this
    // enable; this thread's ring may predate it, so push enough to
    // wrap either way is not portable across test order.  Use the
    // explicit ring API above for exact drop counts; here just check
    // the armed recorder keeps the newest events.
    for (int i = 0; i < 8; ++i)
        emitInstant("test.wrap");
    const TimelineSnapshot snap = timelineSnapshot();
    EXPECT_GE(snap.events.size(), 1u);
}

TEST(Timeline, ConcurrentSnapshotDuringWraparound)
{
    // One producer hammers a small ring through many wraparounds
    // while the main thread snapshots concurrently — the lock-free
    // reader path /v1/timeline exercises on a live daemon.  Every
    // snapshot must be bounded by capacity and internally sane; the
    // final snapshot (after the producer joins) must hold exactly
    // the newest `capacity` events.
    TimelineRing ring(64, 7);
    constexpr std::uint64_t kPushes = 200000;
    std::atomic<bool> go{false};
    std::thread producer([&] {
        while (!go.load())
            ;
        for (std::uint64_t i = 0; i < kPushes; ++i)
            ring.push("stress", TimelineEventKind::kInstant,
                      static_cast<double>(i), i + 1);
    });
    go.store(true);
    std::vector<TimelineEvent> out;
    for (int i = 0; i < 500; ++i) {
        out.clear();
        ring.snapshotInto(out);
        EXPECT_LE(out.size(), 64u);
        for (const TimelineEvent &e : out) {
            EXPECT_STREQ(e.name, "stress");
            EXPECT_EQ(e.tid, 7u);
            EXPECT_GE(e.ts_ns, 1u);
            EXPECT_LE(e.ts_ns, kPushes);
        }
    }
    producer.join();

    EXPECT_EQ(ring.pushed(), kPushes);
    EXPECT_EQ(ring.dropped(), kPushes - 64);
    out.clear();
    ring.snapshotInto(out);
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].ts_ns, kPushes - 64 + i + 1);
}

TEST(Timeline, ResetDiscardsEvents)
{
    ScopedTimeline on;
    emitInstant("test.gone");
    resetTimeline();
    EXPECT_TRUE(timelineSnapshot().events.empty());
}

TEST(Timeline, InternedNamesAreStable)
{
    const char *a = internTimelineName("dyn.name");
    const char *b = internTimelineName(std::string("dyn.") + "name");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "dyn.name");
}

TEST(Timeline, ScopedSpanEmitsBeginEndWhenArmed)
{
    ScopedTimeline on;
    resetSpans();
    ASSERT_FALSE(enabled()); // metrics stay disarmed on purpose
    {
        ScopedSpan outer("tl.outer");
        ScopedSpan inner("tl.inner");
    }
    const TimelineSnapshot snap = timelineSnapshot();
    ASSERT_EQ(snap.events.size(), 4u);
    EXPECT_STREQ(snap.events[0].name, "tl.outer");
    EXPECT_EQ(snap.events[0].kind, TimelineEventKind::kBegin);
    EXPECT_STREQ(snap.events[1].name, "tl.inner");
    EXPECT_EQ(snap.events[1].kind, TimelineEventKind::kBegin);
    EXPECT_STREQ(snap.events[2].name, "tl.inner");
    EXPECT_EQ(snap.events[2].kind, TimelineEventKind::kEnd);
    EXPECT_STREQ(snap.events[3].name, "tl.outer");
    EXPECT_EQ(snap.events[3].kind, TimelineEventKind::kEnd);
    // Timeline armed alone must not grow the metrics span tree.
    EXPECT_TRUE(spanSnapshot().children.empty());
}

// ---------------------------------------------------------------------------
// Chrome trace_event export (pure function of a hand-built snapshot).

TimelineEvent
ev(const char *name, TimelineEventKind kind, std::uint64_t ts_ns,
   std::uint32_t tid, double value = 0.0)
{
    TimelineEvent e;
    e.name = name;
    e.kind = kind;
    e.ts_ns = ts_ns;
    e.tid = tid;
    e.value = value;
    return e;
}

TEST(TimelineExport, ChromeGolden)
{
    TimelineSnapshot snap;
    snap.events = {
        ev("load", TimelineEventKind::kBegin, 1000, 0),
        ev("parse", TimelineEventKind::kBegin, 2000, 0),
        ev("tick", TimelineEventKind::kInstant, 2500, 1),
        ev("depth", TimelineEventKind::kCounter, 3000, 1, 3.0),
        ev("parse", TimelineEventKind::kEnd, 3500, 0),
        ev("load", TimelineEventKind::kEnd, 4000, 0),
    };
    EXPECT_EQ(
        renderChromeTrace(snap, 42),
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":42,"
        "\"tid\":0,\"args\":{\"name\":\"dlw\"}}"
        ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":42,"
        "\"tid\":0,\"args\":{\"name\":\"thread-0\"}}"
        ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":42,"
        "\"tid\":1,\"args\":{\"name\":\"thread-1\"}},\n"
        "{\"name\":\"load\",\"ph\":\"X\",\"ts\":1.000,"
        "\"dur\":3.000,\"pid\":42,\"tid\":0},\n"
        "{\"name\":\"parse\",\"ph\":\"X\",\"ts\":2.000,"
        "\"dur\":1.500,\"pid\":42,\"tid\":0},\n"
        "{\"name\":\"tick\",\"ph\":\"i\",\"ts\":2.500,"
        "\"pid\":42,\"tid\":1,\"s\":\"t\"},\n"
        "{\"name\":\"depth\",\"ph\":\"C\",\"ts\":3.000,"
        "\"pid\":42,\"tid\":1,\"args\":{\"value\":3}}\n"
        "]}\n");
}

TEST(TimelineExport, UnmatchedBeginStaysOpen)
{
    TimelineSnapshot snap;
    snap.events = {
        ev("stuck", TimelineEventKind::kBegin, 1000, 0),
        ev("orphan", TimelineEventKind::kEnd, 2000, 0),
    };
    const std::string json = renderChromeTrace(snap, 42);
    // The begin has no matching end (names differ), so both survive
    // raw instead of folding into an X.
    EXPECT_NE(json.find("\"name\":\"stuck\",\"ph\":\"B\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"orphan\",\"ph\":\"E\""),
              std::string::npos);
    EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TimelineExport, ExportParsesAsJson)
{
    TimelineSnapshot snap;
    snap.events = {
        ev("stage", TimelineEventKind::kBegin, 100, 0),
        ev("stage", TimelineEventKind::kEnd, 900, 0),
        ev("q", TimelineEventKind::kCounter, 500, 0, 2.5),
    };
    StatusOr<JsonValue> doc = parseJson(renderChromeTrace(snap, 7));
    ASSERT_TRUE(doc.ok());
    const JsonValue *events = doc.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, JsonValue::Type::kArray);
    // process_name + thread_name + X + C.
    ASSERT_EQ(events->items.size(), 4u);
    bool saw_complete = false;
    for (const JsonValue &e : events->items) {
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str == "X") {
            saw_complete = true;
            ASSERT_NE(e.find("dur"), nullptr);
            EXPECT_DOUBLE_EQ(e.find("dur")->number, 0.8);
        }
        EXPECT_NE(e.find("pid"), nullptr);
        EXPECT_NE(e.find("tid"), nullptr);
        EXPECT_NE(e.find("name"), nullptr);
    }
    EXPECT_TRUE(saw_complete);
}

TEST(TimelineExport, WriteChromeTraceReportsIoErrors)
{
    TimelineSnapshot snap;
    EXPECT_FALSE(
        writeChromeTrace("/nonexistent-dir/trace.json", snap).ok());
}

// ---------------------------------------------------------------------------
// Signal-safe dump (exercised without a signal).

TEST(TimelineDump, RawStreamIsValidJson)
{
    ScopedTimeline on;
    emitBegin("dump.stage");
    emitCounter("dump.depth", 4.0);
    emitEnd("dump.stage");

    char path[] = "/tmp/dlw_timeline_dump_XXXXXX";
    const int fd = ::mkstemp(path);
    ASSERT_GE(fd, 0);
    dumpTimelineToFd(fd);
    ::close(fd);

    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    ::unlink(path);

    StatusOr<JsonValue> doc = parseJson(ss.str());
    ASSERT_TRUE(doc.ok());
    ASSERT_EQ(doc.value().type, JsonValue::Type::kArray);
    // The dump walks every ring in the process (other tests' events
    // included), so check containment, not exact counts.
    bool saw_begin = false;
    bool saw_counter = false;
    for (const JsonValue &e : doc.value().items) {
        const JsonValue *name = e.find("name");
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(ph, nullptr);
        if (name->str == "dump.stage" && ph->str == "B")
            saw_begin = true;
        if (name->str == "dump.depth" && ph->str == "C") {
            saw_counter = true;
            const JsonValue *args = e.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_DOUBLE_EQ(args->find("value")->number, 4.0);
        }
    }
    EXPECT_TRUE(saw_begin);
    EXPECT_TRUE(saw_counter);
}

// ---------------------------------------------------------------------------
// Fleet thread-count invariance.

/** Deterministic per-(name, kind) event counts for one thread count. */
std::map<std::string, std::uint64_t>
fleetTimelineCounts(std::size_t threads)
{
    resetTimeline();
    enableTimeline();
    fleet::FleetConfig cfg;
    cfg.drives = 8;
    cfg.threads = threads;
    cfg.seed = 7;
    cfg.rate = 40.0;
    cfg.window = 10 * kSec;
    fleet::runFleet(cfg);
    disableTimeline();

    std::map<std::string, std::uint64_t> counts;
    for (const TimelineEvent &e : timelineSnapshot().events) {
        // Steals are scheduling noise by design, like the
        // fleet.pool.steals metric.
        if (std::string(e.name) == "fleet.pool.steal")
            continue;
        counts[std::string(e.name) + "/" +
               timelineEventKindName(e.kind)]++;
    }
    return counts;
}

TEST(TimelineFleet, EventCountsIdenticalAtAnyThreadCount)
{
    const auto serial = fleetTimelineCounts(1);
    const auto parallel = fleetTimelineCounts(8);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial.at("fleet.pool.task/instant"), 8u);
    EXPECT_EQ(serial.at("fleet.run/begin"), 1u);
    EXPECT_EQ(serial.at("fleet.run/end"), 1u);
    EXPECT_EQ(serial.at("fleet.shard/begin"), 8u);
    EXPECT_EQ(serial.at("fleet.shard/end"), 8u);
}

} // anonymous namespace
} // namespace obs
} // namespace dlw
