/**
 * @file
 * Streaming ms-trace file decoders: CSV and binary sources that
 * deliver a file chunk-by-chunk instead of materializing it.
 *
 * These are the file-backed implementations of trace::RequestSource.
 * The header (drive id, observation window) is decoded eagerly by the
 * open*() factory — header corruption is never recoverable and fails
 * the open — and the records are decoded lazily, one RequestBatch per
 * next() call, under the caller's corrupt-record policy.  Peak decode
 * memory is O(batch), not O(file).
 *
 * The whole-trace readers in trace/csvio.hh and trace/binio.hh are
 * thin drains over these sources, so there is exactly one decode
 * implementation per format and the streaming path is byte-for-byte
 * the same parse the legacy path performs.
 */

#ifndef DLW_TRACE_STREAM_HH
#define DLW_TRACE_STREAM_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>

#include "common/status.hh"
#include "trace/gate.hh"
#include "trace/ingest.hh"
#include "trace/source.hh"

namespace dlw
{
namespace trace
{

/**
 * Base of the file-backed sources: metadata, policy gate, terminal
 * status, and the ingest.* metrics scope (flushed on destruction,
 * like the whole-trace readers).
 */
class FileSource : public RequestSource
{
  public:
    ~FileSource() override = default;

    const std::string &driveId() const override { return drive_id_; }

    Tick start() const override { return start_; }

    Tick duration() const override { return duration_; }

    Status
    status() const override
    {
        if (status_.ok() || context_.empty())
            return status_;
        Status s = status_;
        return s.withContext(context_);
    }

    /** Ingestion counters accumulated so far. */
    const IngestStats &stats() const { return gate_.st; }

    /**
     * Context frame ("reading '<path>'") prepended to mid-stream
     * errors; the path factories set it so streaming failures name
     * their file like the whole-trace readers do.
     */
    void setContext(std::string ctx) { context_ = std::move(ctx); }

  protected:
    FileSource(const IngestOptions &opts, std::string drive_id,
               Tick start, Tick duration,
               std::unique_ptr<std::istream> owned, std::istream &is)
        : drive_id_(std::move(drive_id)), start_(start),
          duration_(duration), opts_(opts), owned_(std::move(owned)),
          is_(is), gate_{opts_, {}}, obs_scope_(gate_.st)
    {
    }

    std::string drive_id_;
    Tick start_ = 0;
    Tick duration_ = 0;
    IngestOptions opts_;
    std::unique_ptr<std::istream> owned_; ///< set for path opens
    std::istream &is_;
    Gate gate_;
    IngestMetricsScope obs_scope_;
    Status status_;
    std::string context_;
    bool done_ = false;
};

/**
 * Open a streaming CSV decoder over a caller-owned stream (which
 * must outlive the source) or a file path.  Fails on a bad or
 * truncated header.
 */
StatusOr<std::unique_ptr<FileSource>> openMsCsvSource(
    std::istream &is, const IngestOptions &opts);
StatusOr<std::unique_ptr<FileSource>> openMsCsvSource(
    const std::string &path, const IngestOptions &opts);

/** Open a streaming binary decoder (stream or path). */
StatusOr<std::unique_ptr<FileSource>> openMsBinarySource(
    std::istream &is, const IngestOptions &opts);
StatusOr<std::unique_ptr<FileSource>> openMsBinarySource(
    const std::string &path, const IngestOptions &opts);

/**
 * Drain a freshly opened source into a whole trace, propagating the
 * open error verbatim when there is no source.  The legacy readers in
 * csvio/binio are this shim over the streaming decoders, so both
 * paths share one decode implementation byte for byte.  On any
 * failure `stats` (when given) holds the counters accumulated before
 * the error.
 */
StatusOr<MsTrace> drainMsSource(
    StatusOr<std::unique_ptr<FileSource>> src, IngestStats *stats);

// ---------------------------------------------------------------------------
// The ms-trace wire grammar, exported so the network framing layer
// (src/net) decodes exactly the bytes the file decoders decode — one
// record codec per format, whether it arrives from a file or a
// socket.

/** Stream metadata carried by a ms-trace header (CSV or binary). */
struct MsStreamHeader
{
    std::string drive_id;
    Tick start = 0;
    Tick duration = 0;
};

/** Parse a `# dlw-ms-v1,<id>,<start>,<duration>` header line. */
Status parseMsCsvHeaderLine(const std::string &line,
                            MsStreamHeader &out);

/**
 * Outcome of decoding one record (CSV line or raw binary record).
 * `why` is the bare corruption reason; callers decorate it with
 * their own position frame (line number, record index).
 */
struct MsRecordParse
{
    std::string why;      ///< empty for a clean parse
    bool clamped = false; ///< repaired under the clamp policy

    /** True when the output record is usable (clean or repaired). */
    bool usable() const { return why.empty() || clamped; }
};

/**
 * Parse one trimmed, non-empty CSV record line
 * (`arrival,lba,blocks,op`).  `clamp` enables the best-effort
 * repairs of RecordPolicy::kBestEffortClamp (lowercase ops,
 * zero-length requests).
 */
MsRecordParse parseMsCsvRecordLine(const std::string &trimmed,
                                   bool clamp, Request &out);

/** On-wire binary request record, explicitly padded to 24 bytes. */
struct MsRawRecord
{
    std::int64_t arrival;
    std::uint64_t lba;
    std::uint32_t blocks;
    std::uint8_t op;
    std::uint8_t pad[3];
};
static_assert(sizeof(MsRawRecord) == 24, "raw record layout changed");

/** Magic prefix of a DLWMS1 binary ms trace. */
extern const std::array<char, 8> kMsBinaryMagic;

/** Validate (and under `clamp`, repair) one raw binary record. */
MsRecordParse decodeMsRawRecord(const MsRawRecord &raw, bool clamp,
                                Request &out);

/**
 * Open a streaming decoder picked by file extension (.csv or .bin).
 * SPC traces are not streamable — their arrivals need a global sort —
 * so .spc returns InvalidArgument; materialize those via readSpc().
 */
StatusOr<std::unique_ptr<FileSource>> openMsSource(
    const std::string &path, const IngestOptions &opts);

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_STREAM_HH
