/**
 * @file
 * E3 — disk utilization over time at different measurement windows.
 *
 * Regenerates the utilization-timeline figure: the same drive's busy
 * fraction plotted per minute looks moderate and smooth; per second
 * it spikes to saturation.  The mean is scale-invariant, the peak is
 * not — the core of the paper's "time-scales matter" message.
 */

#include <iostream>

#include "benchutil.hh"
#include "common/strutil.hh"
#include "core/report.hh"
#include "core/utilization.hh"

#include "obs/export.hh"

using namespace dlw;

int
main()
{
    obs::BenchReportGuard obs_guard("e03_util_timeline");
    std::cout << "E3: utilization over time at multiple windows\n\n";

    auto ms = bench::makeStandardMsSet();
    const auto &drive = ms[1]; // the high-rate OLTP drive

    // Per-minute utilization timeline (the figure's main series).
    core::UtilizationProfile per_min =
        core::utilizationProfile(drive.log, kMinute);
    std::vector<std::pair<double, double>> series;
    for (std::size_t i = 0; i < per_min.series.size(); ++i)
        series.emplace_back(static_cast<double>(i),
                            per_min.series[i]);
    core::printSeries(std::cout, "E3-util-timeline",
                      drive.name + "@1min", series);

    // Profile table across windows.
    std::cout << '\n';
    core::Table t("utilization vs measurement window (" + drive.name +
                      ")",
                  {"window", "mean%", "median%", "p95%", "peak%",
                   "idle bins%", "bins >=90%"});
    for (Tick w : {100 * kMsec, kSec, 10 * kSec, kMinute,
                   10 * kMinute}) {
        core::UtilizationProfile p =
            core::utilizationProfile(drive.log, w);
        t.addRow({formatDuration(w), core::cell(100.0 * p.mean),
                  core::cell(100.0 * p.median),
                  core::cell(100.0 * p.p95),
                  core::cell(100.0 * p.peak),
                  core::cell(100.0 * p.idle_fraction),
                  core::cell(100.0 * p.saturated_fraction)});
    }
    t.print(std::cout);

    std::cout << "\nShape check: mean is constant across windows "
                 "while the peak rises as the window shrinks.\n";
    return 0;
}
