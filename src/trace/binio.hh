/**
 * @file
 * Versioned binary format for Millisecond traces.
 *
 * A multi-hour enterprise ms trace easily holds tens of millions of
 * requests; CSV is too slow and too large for the benchmark sweeps,
 * so the harness uses this fixed-layout little-endian binary form:
 *
 *   magic   "DLWMS1\0\0"                          (8 bytes)
 *   id_len  u32; drive id bytes follow            (4 + n bytes)
 *   start   i64 ticks
 *   dur     i64 ticks
 *   count   u64
 *   count * { arrival i64, lba u64, blocks u32, op u8, pad[3] }
 *
 * Readers verify the magic and record count; corrupt or truncated
 * record data is handled per the caller's RecordPolicy (a truncated
 * tail keeps the intact prefix under skip/clamp).  Header corruption
 * always fails: there is no way to resynchronize.
 */

#ifndef DLW_TRACE_BINIO_HH
#define DLW_TRACE_BINIO_HH

#include <iosfwd>
#include <string>

#include "common/status.hh"
#include "trace/ingest.hh"
#include "trace/mstrace.hh"

namespace dlw
{
namespace trace
{

/** Write a ms trace in binary form to a stream (throws StatusError). */
void writeMsBinary(std::ostream &os, const MsTrace &trace);

/** Write a ms trace in binary form to a file (throws StatusError). */
void writeMsBinary(const std::string &path, const MsTrace &trace);

/**
 * Read a binary ms trace from a stream.
 *
 * @param is    Input stream positioned at the magic.
 * @param opts  Corrupt-record policy and limits.
 * @param stats Filled with ingestion counters when non-null.
 * @return The trace, or the first unrecovered corruption.
 */
StatusOr<MsTrace> readMsBinary(std::istream &is,
                               const IngestOptions &opts,
                               IngestStats *stats = nullptr);

/** Read a binary ms trace from a file under the given policy. */
StatusOr<MsTrace> readMsBinary(const std::string &path,
                               const IngestOptions &opts,
                               IngestStats *stats = nullptr);

/** Strict legacy read (kAbort; throws StatusError on corruption). */
MsTrace readMsBinary(std::istream &is);

/** Strict legacy read from a file (throws StatusError). */
MsTrace readMsBinary(const std::string &path);

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_BINIO_HH
