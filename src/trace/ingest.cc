#include "trace/ingest.hh"

#include <sstream>

namespace dlw
{
namespace trace
{

const char *
recordPolicyName(RecordPolicy policy)
{
    switch (policy) {
      case RecordPolicy::kAbort:
        return "abort";
      case RecordPolicy::kSkipAndCount:
        return "skip";
      case RecordPolicy::kBestEffortClamp:
        return "clamp";
    }
    return "unknown";
}

StatusOr<RecordPolicy>
parseRecordPolicy(const std::string &name)
{
    if (name == "abort")
        return RecordPolicy::kAbort;
    if (name == "skip")
        return RecordPolicy::kSkipAndCount;
    if (name == "clamp")
        return RecordPolicy::kBestEffortClamp;
    return Status::invalidArgument("unknown corrupt-record policy '" +
                                   name + "' (abort|skip|clamp)");
}

void
IngestStats::noteError(std::string msg, std::size_t max_samples)
{
    ++errors;
    if (error_samples.size() < max_samples)
        error_samples.push_back(std::move(msg));
}

void
IngestStats::merge(const IngestStats &other)
{
    records_read += other.records_read;
    records_skipped += other.records_skipped;
    records_clamped += other.records_clamped;
    errors += other.errors;
    bytes_recovered += other.bytes_recovered;
    for (const std::string &s : other.error_samples) {
        if (error_samples.size() >= 4)
            break;
        error_samples.push_back(s);
    }
}

std::string
IngestStats::summary() const
{
    std::ostringstream os;
    os << "read " << records_read << ", skipped " << records_skipped
       << ", clamped " << records_clamped << ", errors " << errors
       << ", recovered " << bytes_recovered << " B";
    return os.str();
}

} // namespace trace
} // namespace dlw
