#include "daemon/session.hh"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/timeline.hh"

namespace dlw
{
namespace daemon
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
wallNowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

} // namespace

const char *
sessionStageName(SessionStage s)
{
    switch (s) {
    case SessionStage::kRead:
        return "read";
    case SessionStage::kDecode:
        return "decode";
    case SessionStage::kAdmit:
        return "admit";
    case SessionStage::kFold:
        return "fold";
    case SessionStage::kMerge:
        return "merge";
    }
    return "?";
}

obs::Histogram &
sessionStageHistogram(SessionStage s)
{
    static obs::Histogram &read = obs::histogram("daemon.stage.read_seconds", "s", "daemon", "socket-read latency per readable event");
    static obs::Histogram &decode = obs::histogram("daemon.stage.decode_seconds", "s", "daemon", "wire-decode latency per consumed chunk");
    static obs::Histogram &admit = obs::histogram("daemon.stage.admit_seconds", "s", "daemon", "QoS admission-decision latency per chunk");
    static obs::Histogram &fold = obs::histogram("daemon.stage.fold_seconds", "s", "daemon", "incremental accumulator-fold latency per chunk");
    static obs::Histogram &merge = obs::histogram("daemon.stage.merge_seconds", "s", "daemon", "final finish-and-render latency per session");
    switch (s) {
    case SessionStage::kRead:
        return read;
    case SessionStage::kDecode:
        return decode;
    case SessionStage::kAdmit:
        return admit;
    case SessionStage::kFold:
        return fold;
    case SessionStage::kMerge:
        return merge;
    }
    return merge;
}

void
StageStats::note(std::uint64_t ns)
{
    ++count;
    total_ns += ns;
    if (ns > max_ns)
        max_ns = ns;
    std::size_t b = 0;
    for (std::uint64_t v = ns; v > 1 && b + 1 < buckets.size(); v >>= 1)
        ++b;
    ++buckets[b];
}

double
StageStats::quantileNs(double q) const
{
    if (count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (rank >= count)
        rank = count - 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        seen += buckets[b];
        if (seen > rank) {
            // Geometric midpoint of [2^b, 2^(b+1)), capped at max.
            const double mid =
                static_cast<double>(std::uint64_t(1) << b) * 1.5;
            return mid < static_cast<double>(max_ns)
                ? mid
                : static_cast<double>(max_ns);
        }
    }
    return static_cast<double>(max_ns);
}

const char *
sessionStateName(SessionState s)
{
    switch (s) {
    case SessionState::kStreaming:
        return "streaming";
    case SessionState::kDone:
        return "done";
    case SessionState::kAborted:
        return "aborted";
    }
    return "?";
}

Session::Session(std::string id, std::string tenant,
                 net::StreamFormat format, qos::WorkClass klass,
                 std::string trace_id)
    : id_(std::move(id)), tenant_(std::move(tenant)),
      tag_{qos::internTenant(tenant_), klass}, format_(format),
      trace_id_(std::move(trace_id)),
      decoder_(format, net::kMaxFrameBytes)
{
    batch_.setTag(tag_);
    started_at_ms_ = wallNowMs();
    started_ns_ = steadyNowNs();
    internTraceNames();
}

void
Session::internTraceNames()
{
    if (trace_id_.empty())
        return;
    // One interning per traced session, never on the data path.
    const std::string p = "trace/" + trace_id_ + "/server.";
    tl_span_ = obs::internTimelineName(p + "session");
    tl_decode_ = obs::internTimelineName(p + "decode");
    tl_fold_ = obs::internTimelineName(p + "fold");
    tl_park_ = obs::internTimelineName(p + "park");
    tl_report_ = obs::internTimelineName(p + "report");
}

void
Session::noteStage(SessionStage st, std::uint64_t ns)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stages_[static_cast<std::size_t>(st)].note(ns);
    }
    sessionStageHistogram(st).record(static_cast<double>(ns) * 1e-9);
}

std::uint64_t
Session::durationMs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (final_duration_ms_ != 0 || state_ != SessionState::kStreaming)
        return final_duration_ms_;
    return (steadyNowNs() - started_ns_) / 1000000;
}

double
Session::recordsPerS() const
{
    const std::uint64_t recs = records();
    const std::uint64_t ms = durationMs();
    if (recs == 0 || ms == 0)
        return 0.0;
    return static_cast<double>(recs) * 1000.0 /
           static_cast<double>(ms);
}

Status
Session::consume(net::ByteQueue &in)
{
    const std::size_t before = in.size();
    if (tl_decode_ != nullptr)
        obs::emitBegin(tl_decode_);
    const std::uint64_t t0 = steadyNowNs();
    Status s = decoder_.drain(in);
    const std::uint64_t t1 = steadyNowNs();
    if (tl_decode_ != nullptr)
        obs::emitEnd(tl_decode_);
    noteStage(SessionStage::kDecode, t1 - t0);
    {
        std::lock_guard<std::mutex> lock(mu_);
        payload_bytes_ += before - in.size();
    }
    if (!s.ok()) {
        abort(s.message());
        return s;
    }
    s = foldPending();
    noteStage(SessionStage::kFold, steadyNowNs() - t1);
    if (!s.ok())
        abort(s.message());
    return s;
}

Status
Session::finishInput(net::ByteQueue &in)
{
    // A CSV file whose last record line has no trailing newline is
    // legal from disk (getline delivers it), so it must be legal
    // over the wire too: complete the line and drain it.
    if (format_ == net::StreamFormat::kCsv && !in.empty()) {
        in.append("\n", 1);
        Status s = consume(in);
        if (!s.ok())
            return s;
    }
    Status s = decoder_.endOfInput();
    if (!s.ok()) {
        abort(s.message());
        return s;
    }
    s = foldPending();
    if (!s.ok()) {
        abort(s.message());
        return s;
    }
    // A header-only stream is valid (an empty trace characterizes to
    // an empty report), but no header at all cannot reach here: the
    // decoder fails endOfInput() first.
    std::lock_guard<std::mutex> lock(mu_);
    if (live_ == nullptr) {
        live_ = std::make_unique<core::LiveCharacterization>(
            decoder_.header());
    }
    return Status();
}

void
Session::abort(const std::string &why)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == SessionState::kStreaming) {
        state_ = SessionState::kAborted;
        error_ = why;
    }
}

std::string
Session::finalReportText()
{
    const std::uint64_t t0 = steadyNowNs();
    std::string text;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!final_text_.empty())
            return final_text_; // restored (or refolded) done session
        const core::DriveCharacterization c = live_->finish();
        if (state_ == SessionState::kStreaming)
            state_ = SessionState::kDone;
        // Cache everything a restart needs to keep serving this
        // session: finish() consumed the accumulators, so this is
        // the last moment the result can be rendered.
        final_records_ = live_->requests();
        final_char_json_ = core::renderCharacterizationJson(c);
        final_text_ = c.render();
        final_duration_ms_ = (steadyNowNs() - started_ns_) / 1000000;
        if (final_duration_ms_ == 0)
            final_duration_ms_ = 1; // sub-ms sessions still rank
        text = final_text_;
    }
    noteStage(SessionStage::kMerge, steadyNowNs() - t0);
    return text;
}

std::string
Session::reportJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "{\"session\":\"" << jsonEscape(id_) << "\",\"tenant\":\""
       << jsonEscape(tenant_) << "\",\"class\":\""
       << qos::workClassName(tag_.klass) << "\",\"state\":\""
       << sessionStateName(state_) << "\"";
    if (!trace_id_.empty())
        os << ",\"trace\":\"" << jsonEscape(trace_id_) << "\"";
    if (!error_.empty())
        os << ",\"error\":\"" << jsonEscape(error_) << "\"";
    std::uint64_t recs = 0;
    if (live_ != nullptr)
        recs = live_->requests();
    else if (!final_char_json_.empty())
        recs = final_records_;
    const std::uint64_t dur_ms =
        (final_duration_ms_ != 0 ||
         state_ != SessionState::kStreaming)
        ? final_duration_ms_
        : (steadyNowNs() - started_ns_) / 1000000;
    os << ",\"started_at_ms\":" << started_at_ms_
       << ",\"duration_ms\":" << dur_ms << ",\"records_per_s\":";
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.1f",
                  (recs == 0 || dur_ms == 0)
                      ? 0.0
                      : static_cast<double>(recs) * 1000.0 /
                            static_cast<double>(dur_ms));
    os << rate;
    os << ",\"stages\":{";
    bool first_stage = true;
    for (std::size_t i = 0; i < kSessionStageCount; ++i) {
        const StageStats &st = stages_[i];
        if (st.count == 0)
            continue;
        if (!first_stage)
            os << ',';
        first_stage = false;
        char buf[160];
        std::snprintf(
            buf, sizeof(buf),
            "\"%s\":{\"count\":%llu,\"mean_us\":%.3f,"
            "\"max_us\":%.3f,\"p50_us\":%.3f,\"p95_us\":%.3f,"
            "\"p99_us\":%.3f}",
            sessionStageName(static_cast<SessionStage>(i)),
            static_cast<unsigned long long>(st.count),
            static_cast<double>(st.total_ns) /
                static_cast<double>(st.count) / 1000.0,
            static_cast<double>(st.max_ns) / 1000.0,
            st.quantileNs(0.50) / 1000.0,
            st.quantileNs(0.95) / 1000.0,
            st.quantileNs(0.99) / 1000.0);
        os << buf;
    }
    os << '}';
    if (live_ != nullptr) {
        os << ",\"records\":" << live_->requests()
           << ",\"characterization\":"
           << core::renderCharacterizationJson(live_->snapshot());
    } else if (!final_char_json_.empty()) {
        // Restored after a restart: the live accumulators are gone,
        // but the fold's rendered result survives in the checkpoint.
        os << ",\"records\":" << final_records_
           << ",\"characterization\":" << final_char_json_;
    } else {
        os << ",\"records\":0";
    }
    os << "}\n";
    return os.str();
}

SessionState
Session::state() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
}

std::uint64_t
Session::records() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return live_ == nullptr ? 0 : live_->requests();
}

bool
Session::settleOnce()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (settled_)
        return false;
    settled_ = true;
    return true;
}

std::uint64_t
Session::payloadBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return payload_bytes_;
}

void
Session::saveState(BinEnc &enc) const
{
    std::lock_guard<std::mutex> lock(mu_);
    enc.str(id_);
    enc.str(tenant_);
    enc.u8(static_cast<std::uint8_t>(tag_.klass));
    enc.u8(format_ == net::StreamFormat::kBin ? 1 : 0);
    enc.u8(static_cast<std::uint8_t>(state_));
    enc.str(error_);
    enc.u8(settled_ ? 1 : 0);
    enc.u64(payload_bytes_);
    const bool has_final = !final_text_.empty();
    enc.u8(has_final ? 1 : 0);
    if (has_final) {
        enc.str(final_text_);
        enc.str(final_char_json_);
        enc.u64(final_records_);
    }
    decoder_.saveState(enc);
    // Post-finish accumulators are consumed; the final blob above
    // carries everything a done session still serves.
    const bool has_live = live_ != nullptr && !has_final;
    enc.u8(has_live ? 1 : 0);
    if (has_live)
        live_->saveState(enc);
    // v4: trace identity and latency attribution ride at the tail so
    // every earlier field keeps its v3 offset.
    enc.str(trace_id_);
    enc.u64(started_at_ms_);
    enc.u64(final_duration_ms_);
    for (const StageStats &st : stages_) {
        enc.u64(st.count);
        enc.u64(st.total_ns);
        enc.u64(st.max_ns);
        for (std::uint32_t b : st.buckets)
            enc.u32(b);
    }
}

std::shared_ptr<Session>
Session::restore(BinDec &dec)
{
    const std::string id = dec.str();
    const std::string tenant = dec.str();
    const std::uint8_t klass = dec.u8();
    const std::uint8_t format = dec.u8();
    const std::uint8_t state = dec.u8();
    if (!dec.ok() || klass >= qos::kWorkClassCount || format > 1 ||
        state > static_cast<std::uint8_t>(SessionState::kAborted))
        return nullptr;
    auto s = std::make_shared<Session>(
        id, tenant,
        format ? net::StreamFormat::kBin : net::StreamFormat::kCsv,
        static_cast<qos::WorkClass>(klass));
    s->state_ = static_cast<SessionState>(state);
    s->error_ = dec.str();
    s->settled_ = dec.u8() != 0;
    s->payload_bytes_ = dec.u64();
    if (dec.u8() != 0) {
        s->final_text_ = dec.str();
        s->final_char_json_ = dec.str();
        s->final_records_ = dec.u64();
    }
    if (!s->decoder_.loadState(dec))
        return nullptr;
    if (dec.u8() != 0) {
        s->live_ = core::LiveCharacterization::restore(dec);
        if (s->live_ == nullptr)
            return nullptr;
    }
    s->trace_id_ = dec.str();
    s->internTraceNames();
    s->started_at_ms_ = dec.u64();
    s->final_duration_ms_ = dec.u64();
    for (StageStats &st : s->stages_) {
        st.count = dec.u64();
        st.total_ns = dec.u64();
        st.max_ns = dec.u64();
        for (std::uint32_t &b : st.buckets)
            b = dec.u32();
    }
    if (!dec.ok())
        return nullptr;
    return s;
}

Status
Session::foldPending()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (live_ == nullptr) {
        if (!decoder_.headerReady())
            return Status();
        live_ = std::make_unique<core::LiveCharacterization>(
            decoder_.header());
    }
    while (decoder_.take(batch_)) {
        Status s = live_->observe(batch_);
        if (!s.ok())
            return s;
    }
    return Status();
}

} // namespace daemon
} // namespace dlw
