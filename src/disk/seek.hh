/**
 * @file
 * Seek-time model.
 *
 * The standard two-regime curve: short seeks are dominated by arm
 * acceleration and grow with the square root of the distance; long
 * seeks reach coast velocity and grow linearly.  Parameters are
 * expressed as the three numbers a datasheet quotes -- track-to-track,
 * average, and full-stroke seek time -- and fitted internally.
 */

#ifndef DLW_DISK_SEEK_HH
#define DLW_DISK_SEEK_HH

#include <cstdint>

#include "common/types.hh"

namespace dlw
{
namespace disk
{

/**
 * Two-regime seek-time curve fitted from datasheet numbers.
 */
class SeekModel
{
  public:
    /**
     * @param cylinders      Total cylinders of the drive (>= 2).
     * @param track_to_track Single-cylinder seek time.
     * @param average        Average seek time (measured at one third
     *                       of the full stroke, per convention).
     * @param full_stroke    End-to-end seek time.
     */
    SeekModel(std::uint64_t cylinders, Tick track_to_track,
              Tick average, Tick full_stroke);

    /** Datasheet numbers of a 15k enterprise drive. */
    static SeekModel makeEnterprise(std::uint64_t cylinders);

    /** Datasheet numbers of a 7200 RPM nearline drive. */
    static SeekModel makeNearline(std::uint64_t cylinders);

    /**
     * Seek time between two cylinders (0 when equal).
     */
    Tick seekTime(std::uint64_t from, std::uint64_t to) const;

    /** Track-to-track seek time. */
    Tick trackToTrack() const { return t2t_; }

    /** Full-stroke seek time. */
    Tick fullStroke() const { return full_; }

  private:
    std::uint64_t cylinders_;
    Tick t2t_;
    Tick full_;
    /** Boundary between sqrt and linear regimes, in cylinders. */
    double knee_;
    /** sqrt-regime coefficients: t = a + b * sqrt(d). */
    double a_;
    double b_;
    /** linear-regime coefficients: t = c + e * d. */
    double c_;
    double e_;
};

} // namespace disk
} // namespace dlw

#endif // DLW_DISK_SEEK_HH
