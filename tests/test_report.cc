/**
 * @file
 * Tests for core/report table rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"

namespace dlw
{
namespace core
{
namespace
{

TEST(Table, RendersAlignedColumns)
{
    Table t("demo", {"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::string s = t.toString();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    // Each data line has the same length (alignment).
    std::istringstream is(s);
    std::string line;
    std::getline(is, line); // title
    std::getline(is, line); // header
    const std::size_t header_len = line.size();
    std::getline(is, line); // rule
    EXPECT_EQ(line.size(), header_len);
    while (std::getline(is, line))
        EXPECT_EQ(line.size(), header_len);
}

TEST(Table, RowCount)
{
    Table t("demo", {"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"x"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TableDeathTest, RowWidthMismatch)
{
    Table t("demo", {"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "does not match");
}

TEST(TableDeathTest, NoColumns)
{
    EXPECT_DEATH(Table("demo", {}), "at least one column");
}

TEST(Series, PrintsMarkerAndRows)
{
    std::ostringstream os;
    printSeries(os, "E4-idle", "oltp", {{1.0, 0.5}, {2.0, 0.75}});
    const std::string s = os.str();
    EXPECT_NE(s.find("## figure: E4-idle / oltp"), std::string::npos);
    EXPECT_NE(s.find("oltp,1.000000,0.500000"), std::string::npos);
    EXPECT_NE(s.find("oltp,2.000000,0.750000"), std::string::npos);
}

TEST(Cell, NumberFormats)
{
    EXPECT_EQ(cell(1.5), "1.500");
    EXPECT_EQ(cell(123.456), "123.5");
    EXPECT_EQ(cell(0.0001), "1.000e-04");
    EXPECT_EQ(cell(0.0), "0.000");
    EXPECT_EQ(cell(std::uint64_t{42}), "42");
}

} // anonymous namespace
} // namespace core
} // namespace dlw
