/**
 * @file
 * RAID address mapping.
 *
 * The enterprise traces the paper studies were collected *below*
 * array controllers: what a single disk sees is the array-level
 * workload after striping, mirroring, and parity update traffic.
 * The mapper translates one logical request into the per-disk
 * requests each RAID level produces, so the characterization can be
 * run on exactly the stream a member disk receives.
 *
 * Modeled levels:
 *  - RAID-0: plain striping.
 *  - RAID-1: mirroring; reads round-robin, writes duplicate.
 *  - RAID-5: rotating parity, left-symmetric; small writes expand
 *    into the classic read-modify-write (read old data, read old
 *    parity, write data, write parity).
 */

#ifndef DLW_ARRAY_RAID_HH
#define DLW_ARRAY_RAID_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"

namespace dlw
{
namespace array
{

/** Supported RAID levels. */
enum class RaidLevel
{
    Raid0,
    Raid1,
    Raid5,
};

/** Human-readable level name. */
const char *raidLevelName(RaidLevel level);

/**
 * Array geometry.
 */
struct RaidConfig
{
    RaidLevel level = RaidLevel::Raid0;
    /** Member disks (>= 2; >= 3 for RAID-5). */
    std::uint32_t disks = 4;
    /** Stripe unit in blocks. */
    BlockCount stripe_blocks = 128;
};

/** A request addressed to one member disk. */
struct DiskRequest
{
    /** Member disk index. */
    std::uint32_t disk = 0;
    /** The request as the disk sees it. */
    trace::Request req;
};

/**
 * Stateless-per-request address translator (RAID-1 read balancing
 * keeps a rotating cursor, hence a class).
 */
class RaidMapper
{
  public:
    explicit RaidMapper(const RaidConfig &config);

    /** Configuration in force. */
    const RaidConfig &config() const { return config_; }

    /**
     * Logical array capacity in blocks, given per-disk capacity.
     */
    Lba logicalCapacity(Lba disk_capacity) const;

    /**
     * Translate one logical request into member-disk requests.
     *
     * Arrival times are preserved; a logical request completes when
     * every produced disk request completes.
     *
     * @param req Logical request (must fit the logical capacity
     *            implied by the caller's disks).
     * @return Disk requests, in ascending disk order per fragment.
     */
    std::vector<DiskRequest> map(const trace::Request &req);

  private:
    /** Split a request into stripe-unit fragments. */
    std::vector<trace::Request> fragments(const trace::Request &req)
        const;

    void mapRaid0(const trace::Request &frag,
                  std::vector<DiskRequest> &out) const;
    void mapRaid1(const trace::Request &frag,
                  std::vector<DiskRequest> &out);
    void mapRaid5(const trace::Request &frag,
                  std::vector<DiskRequest> &out) const;

    RaidConfig config_;
    /** RAID-1 read-balancing cursor. */
    std::uint32_t mirror_cursor_ = 0;
};

} // namespace array
} // namespace dlw

#endif // DLW_ARRAY_RAID_HH
