/**
 * @file
 * E21 (extension) — workload consolidation interference.
 *
 * A standing question the paper's moderate-utilization finding
 * raises: if drives are mostly idle, can workloads be consolidated
 * onto fewer spindles?  This experiment services an OLTP stream and
 * a backup stream separately and then merged onto one drive, and
 * reports what consolidation does to each side's response times —
 * the cost of sharing is paid almost entirely by the latency-
 * sensitive workload.
 */

#include <iostream>

#include "benchutil.hh"
#include "core/report.hh"
#include "trace/transform.hh"

#include "obs/export.hh"

using namespace dlw;

namespace
{

/** Mean response in ms over completions whose index is in [lo, hi). */
double
meanResponseOf(const disk::ServiceLog &log, std::size_t lo,
               std::size_t hi)
{
    double s = 0.0;
    std::size_t n = 0;
    for (const disk::Completion &c : log.completions) {
        if (c.index >= lo && c.index < hi) {
            s += static_cast<double>(c.response());
            ++n;
        }
    }
    return n ? s / static_cast<double>(n) /
                   static_cast<double>(kMsec)
             : 0.0;
}

} // anonymous namespace

int
main()
{
    obs::BenchReportGuard obs_guard("e21_consolidation");
    std::cout << "E21: consolidating OLTP and backup on one "
                 "spindle\n\n";

    disk::DriveConfig cfg = disk::DriveConfig::makeEnterprise();
    const Lba cap = cfg.geometry.capacityBlocks();
    const Tick window = 15 * kMinute;

    Rng rng(bench::kSeed + 21);
    synth::Workload oltp = synth::Workload::makeOltp(cap, 60.0, 21);
    synth::Workload backup = synth::Workload::makeBackup(cap, 30.0);
    trace::MsTrace t_oltp = oltp.generate(rng, "oltp", 0, window);
    trace::MsTrace t_backup =
        backup.generate(rng, "backup", 0, window);

    // Separate drives.
    disk::ServiceLog solo_oltp =
        disk::DiskDrive(cfg).service(t_oltp);
    disk::ServiceLog solo_backup =
        disk::DiskDrive(cfg).service(t_backup);

    // Consolidated: merged stream on one drive.  Request indices in
    // the merged trace: track which side each came from by matching
    // against the sorted merge (oltp first in ties is not
    // guaranteed, so tag via LBA parity of the source: instead use
    // sizes — backup requests are 512 blocks, OLTP 8).
    trace::MsTrace merged = trace::merge({t_oltp, t_backup});
    disk::ServiceLog shared = disk::DiskDrive(cfg).service(merged);

    double shared_oltp_ms = 0.0, shared_backup_ms = 0.0;
    std::size_t n_oltp = 0, n_backup = 0;
    for (const disk::Completion &c : shared.completions) {
        const trace::Request &r = merged.at(c.index);
        if (r.blocks >= 512) {
            shared_backup_ms += static_cast<double>(c.response());
            ++n_backup;
        } else {
            shared_oltp_ms += static_cast<double>(c.response());
            ++n_oltp;
        }
    }
    shared_oltp_ms /= static_cast<double>(n_oltp) *
                      static_cast<double>(kMsec);
    shared_backup_ms /= static_cast<double>(n_backup) *
                        static_cast<double>(kMsec);

    core::Table t("separate vs consolidated",
                  {"config", "util%", "OLTP resp ms",
                   "backup resp ms"});
    t.addRow({"2 drives (separate)",
              core::cell(100.0 * (solo_oltp.utilization() +
                                  solo_backup.utilization()) / 2.0),
              core::cell(meanResponseOf(solo_oltp, 0,
                                        t_oltp.size())),
              core::cell(meanResponseOf(solo_backup, 0,
                                        t_backup.size()))});
    t.addRow({"1 drive (consolidated)",
              core::cell(100.0 * shared.utilization()),
              core::cell(shared_oltp_ms),
              core::cell(shared_backup_ms)});
    t.print(std::cout);

    std::cout << "\nOLTP latency inflation under consolidation: "
              << core::cell(shared_oltp_ms /
                            meanResponseOf(solo_oltp, 0,
                                           t_oltp.size()))
              << "x\n";
    std::cout << "\nShape check: the merged drive stays below "
                 "saturation (mean utilization would say \"plenty "
                 "of headroom\"), yet latency degrades an order of "
                 "magnitude: OLTP requests queue behind large "
                 "sequential transfers, and the shared write buffer "
                 "can no longer absorb the backup stream.  Mean "
                 "utilization alone — the coarse-scale view — "
                 "understates the cost of consolidation, which is "
                 "precisely why the paper characterizes workloads "
                 "at fine time-scales.\n";
    return 0;
}
