#include "synth/diurnal.hh"

#include <cmath>

#include "common/logging.hh"

namespace dlw
{
namespace synth
{

RateFunction
DiurnalShape::build() const
{
    dlw_assert(night_level >= 0.0 && day_level >= night_level,
               "diurnal levels inverted");
    dlw_assert(weekend_level >= 0.0, "negative weekend level");

    const DiurnalShape shape = *this;
    return [shape](Tick t) {
        const double hours = static_cast<double>(t) /
                             static_cast<double>(kHour);
        const double hour_of_day = std::fmod(hours, 24.0);
        const auto day = static_cast<std::int64_t>(hours / 24.0);
        const int day_of_week = static_cast<int>(day % 7);

        // Raised cosine centred on the peak hour.
        const double phase =
            (hour_of_day - shape.peak_hour) / 24.0 * 2.0 * M_PI;
        const double mid =
            (shape.day_level + shape.night_level) / 2.0;
        const double amp =
            (shape.day_level - shape.night_level) / 2.0;
        double level = mid + amp * std::cos(phase);

        // Overnight batch window overlays the trough.
        if (shape.batch_level > 0.0) {
            double h = hour_of_day - shape.batch_start_hour;
            if (h < 0.0)
                h += 24.0;
            if (h < shape.batch_hours)
                level = std::max(level, shape.batch_level);
        }

        if (day_of_week >= 5)
            level *= shape.weekend_level;
        return level;
    };
}

double
meanRateOver(const RateFunction &rate, Tick start, Tick span)
{
    dlw_assert(span > 0, "mean over empty span");
    constexpr int kSamples = 60;
    double acc = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const Tick t = start + span * i / kSamples + span / (2 * kSamples);
        acc += rate(t);
    }
    return acc / kSamples;
}

NhppArrivals::NhppArrivals(double base_rate, RateFunction rate,
                           double sup)
    : base_rate_(base_rate), rate_(std::move(rate)), sup_(sup)
{
    dlw_assert(base_rate > 0.0, "base rate must be positive");
    dlw_assert(sup > 0.0, "supremum must be positive");
    dlw_assert(rate_, "null rate function");
}

std::vector<Tick>
NhppArrivals::generate(Rng &rng, Tick start, Tick duration)
{
    // Lewis-Shedler thinning: generate a homogeneous stream at the
    // envelope rate and keep each point with probability
    // rate(t) / envelope.
    std::vector<Tick> out;
    const double envelope = base_rate_ * sup_;
    const double mean_gap = static_cast<double>(kSec) / envelope;
    const Tick end = start + duration;

    Tick at = start;
    while (true) {
        at += static_cast<Tick>(rng.exponential(mean_gap) + 0.5);
        if (at >= end)
            break;
        const double r = rate_(at);
        dlw_assert(r <= sup_ * (1.0 + 1e-9),
                   "rate function exceeded its declared supremum");
        if (rng.uniform() < r / sup_)
            out.push_back(at);
    }
    return out;
}

} // namespace synth
} // namespace dlw
