#include "core/pass.hh"

#include "common/binenc.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "stats/simd/simd.hh"

namespace dlw
{
namespace core
{

namespace
{

/** Fusion bookkeeping for the streaming characterization pass. */
struct PassMetrics
{
    obs::Counter &runs = obs::counter("core.pass.runs",
        "passes", "core",
        "fused characterization passes over a request stream");
    obs::Counter &batches = obs::counter("core.pass.batches",
        "batches", "core",
        "request batches fanned out to accumulators by passes");
    obs::Counter &fused = obs::counter("core.pass.accumulators",
        "accumulators", "core",
        "accumulators fed by passes (divide by core.pass.runs "
        "for the mean fusion width)");
    obs::Gauge &kernel_isa = obs::gauge("core.kernel.isa",
        "isa", "core",
        "active SIMD kernel table (0 scalar, 1 sse2, 2 avx2); "
        "set at the start of every pass");
    obs::Counter &kernel_slow = obs::counter("core.kernel.slow",
        "elements", "core",
        "batch-kernel elements that fell back to the per-element "
        "reference path (series growth, early-stop)");
};

PassMetrics &
passMetrics()
{
    static PassMetrics *m = new PassMetrics();
    return *m;
}

} // anonymous namespace

void
registerPassMetrics()
{
    passMetrics();
}

void
noteKernelSlowPath(std::size_t elems)
{
    if (elems == 0 || !obs::enabled())
        return;
    passMetrics().kernel_slow.add(
        static_cast<std::uint64_t>(elems));
}

void
TraceTotalsAccumulator::begin(const trace::RequestSource &src)
{
    duration_ = src.duration();
}

void
TraceTotalsAccumulator::observe(const trace::RequestBatch &batch)
{
    const std::size_t sz = batch.size();
    if (sz == 0)
        return;
    const stats::simd::KernelOps &k = stats::simd::ops();
    n_ += sz;
    reads_ += static_cast<std::size_t>(k.count_eq_u8(
        reinterpret_cast<const std::uint8_t *>(batch.opsData()), sz,
        static_cast<std::uint8_t>(trace::Op::Read)));
    // Integer sums are associative mod 2^64, so the vector
    // reassociation is exact.
    const std::uint64_t blocks = k.sum_u32(batch.blocksData(), sz);
    blocks_ += blocks;
    bytes_ += blocks * kBlockBytes;
}

double
TraceTotalsAccumulator::readFraction() const
{
    if (n_ == 0)
        return 0.0;
    return static_cast<double>(reads_) / static_cast<double>(n_);
}

double
TraceTotalsAccumulator::arrivalRate() const
{
    if (n_ == 0 || duration_ <= 0)
        return 0.0;
    return static_cast<double>(n_) / ticksToSeconds(duration_);
}

double
TraceTotalsAccumulator::meanRequestBlocks() const
{
    if (n_ == 0)
        return 0.0;
    return static_cast<double>(blocks_) / static_cast<double>(n_);
}

void
TraceTotalsAccumulator::saveState(BinEnc &enc) const
{
    enc.u64(n_);
    enc.u64(reads_);
    enc.u64(bytes_);
    enc.u64(blocks_);
    enc.i64(duration_);
}

bool
TraceTotalsAccumulator::loadState(BinDec &dec)
{
    n_ = static_cast<std::size_t>(dec.u64());
    reads_ = static_cast<std::size_t>(dec.u64());
    bytes_ = dec.u64();
    blocks_ = dec.u64();
    duration_ = dec.i64();
    return dec.ok();
}

Status
CharacterizationPass::run(trace::RequestSource &src,
                          std::size_t batch_requests)
{
    obs::ScopedSpan span("core.pass");
    if (obs::enabled()) {
        PassMetrics &m = passMetrics();
        m.runs.add(1);
        m.fused.add(accs_.size());
        m.kernel_isa.set(
            static_cast<std::int64_t>(stats::simd::activeIsa()));
    }

    for (TraceAccumulator *acc : accs_)
        acc->begin(src);

    trace::RequestBatch batch(batch_requests);
    while (src.next(batch)) {
        if (obs::enabled())
            passMetrics().batches.add(1);
        for (TraceAccumulator *acc : accs_)
            acc->observe(batch);
    }

    Status s = src.status();
    if (!s.ok())
        return s;
    for (TraceAccumulator *acc : accs_)
        acc->finish();
    return s;
}

} // namespace core
} // namespace dlw
