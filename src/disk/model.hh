/**
 * @file
 * Mechanical service-time model.
 *
 * Combines geometry and seek curve into the classic decomposition
 * seek + rotational latency + media transfer.  Rotational latency is
 * deterministic: the platter angle is a pure function of time, so the
 * model waits exactly until the target sector rotates under the head.
 */

#ifndef DLW_DISK_MODEL_HH
#define DLW_DISK_MODEL_HH

#include "disk/geometry.hh"
#include "disk/seek.hh"

namespace dlw
{
namespace disk
{

/**
 * Breakdown of one mechanical access.
 */
struct MechanicalTime
{
    Tick seek = 0;
    Tick rotation = 0;
    Tick transfer = 0;

    /** Total mechanical time. */
    Tick total() const { return seek + rotation + transfer; }
};

/**
 * Service-time calculator over a geometry and a seek curve.
 */
class DiskModel
{
  public:
    DiskModel(DiskGeometry geometry, SeekModel seek);

    /** The geometry in use. */
    const DiskGeometry &geometry() const { return geometry_; }

    /** The seek curve in use. */
    const SeekModel &seek() const { return seek_; }

    /**
     * Platter angle at an absolute tick, in [0, 1).
     */
    double angleAt(Tick t) const;

    /**
     * Mechanical cost of accessing blocks at lba, with the head
     * currently at from_cylinder and the access starting at tick now.
     *
     * @param now           Tick the access begins (end of queueing).
     * @param from_cylinder Head position before the access.
     * @param lba           First block of the access.
     * @param blocks        Access length in blocks.
     * @return Time breakdown; the head ends at cylinderOf(last block).
     */
    MechanicalTime access(Tick now, std::uint64_t from_cylinder,
                          Lba lba, BlockCount blocks) const;

    /** Cylinder where the head rests after the access. */
    std::uint64_t endCylinder(Lba lba, BlockCount blocks) const;

  private:
    DiskGeometry geometry_;
    SeekModel seek_;
};

} // namespace disk
} // namespace dlw

#endif // DLW_DISK_MODEL_HH
