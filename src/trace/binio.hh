/**
 * @file
 * Versioned binary format for Millisecond traces.
 *
 * A multi-hour enterprise ms trace easily holds tens of millions of
 * requests; CSV is too slow and too large for the benchmark sweeps,
 * so the harness uses this fixed-layout little-endian binary form:
 *
 *   magic   "DLWMS1\0\0"                          (8 bytes)
 *   id_len  u32; drive id bytes follow            (4 + n bytes)
 *   start   i64 ticks
 *   dur     i64 ticks
 *   count   u64
 *   count * { arrival i64, lba u64, blocks u32, op u8, pad[3] }
 *
 * Readers verify the magic and record count and fail loudly on
 * truncated files.
 */

#ifndef DLW_TRACE_BINIO_HH
#define DLW_TRACE_BINIO_HH

#include <iosfwd>
#include <string>

#include "trace/mstrace.hh"

namespace dlw
{
namespace trace
{

/** Write a ms trace in binary form to a stream. */
void writeMsBinary(std::ostream &os, const MsTrace &trace);

/** Write a ms trace in binary form to a file path. */
void writeMsBinary(const std::string &path, const MsTrace &trace);

/** Read a binary ms trace from a stream (fatal on corruption). */
MsTrace readMsBinary(std::istream &is);

/** Read a binary ms trace from a file. */
MsTrace readMsBinary(const std::string &path);

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_BINIO_HH
