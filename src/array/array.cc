#include "array/array.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dlw
{
namespace array
{

double
ArrayLog::meanLogicalResponse() const
{
    if (logical_response.empty())
        return 0.0;
    double s = 0.0;
    for (Tick r : logical_response)
        s += static_cast<double>(r);
    return s / static_cast<double>(logical_response.size());
}

double
ArrayLog::meanDiskUtilization() const
{
    if (disk_logs.empty())
        return 0.0;
    double s = 0.0;
    for (const disk::ServiceLog &log : disk_logs)
        s += log.utilization();
    return s / static_cast<double>(disk_logs.size());
}

double
ArrayLog::fanout(std::size_t logical_requests) const
{
    if (logical_requests == 0)
        return 0.0;
    std::size_t total = 0;
    for (const trace::MsTrace &t : disk_traces)
        total += t.size();
    return static_cast<double>(total) /
           static_cast<double>(logical_requests);
}

RaidArray::RaidArray(RaidConfig raid, disk::DriveConfig drive)
    : raid_(raid), drive_(std::move(drive))
{
}

Lba
RaidArray::logicalCapacity() const
{
    RaidMapper mapper(raid_);
    return mapper.logicalCapacity(drive_.geometry.capacityBlocks());
}

ArrayLog
RaidArray::service(const trace::MsTrace &tr)
{
    dlw_assert(tr.validate(), "array input trace failed validation");
    RaidMapper mapper(raid_);
    const Lba logical_cap = logicalCapacity();

    ArrayLog out;
    out.disk_traces.reserve(raid_.disks);
    for (std::uint32_t d = 0; d < raid_.disks; ++d) {
        out.disk_traces.emplace_back(
            tr.driveId() + "/disk" + std::to_string(d), tr.start(),
            tr.duration());
    }

    // fragment_of[d][j] = logical index of disk d's j-th request.
    std::vector<std::vector<std::size_t>> fragment_of(raid_.disks);

    for (std::size_t i = 0; i < tr.size(); ++i) {
        const trace::Request &req = tr.at(i);
        dlw_assert(req.lbaEnd() <= logical_cap,
                   "request beyond array logical capacity");
        for (const DiskRequest &dr : mapper.map(req)) {
            out.disk_traces[dr.disk].append(dr.req);
            fragment_of[dr.disk].push_back(i);
        }
    }

    // Service every member independently (each has its own queue,
    // cache and head) and recover logical completion times.
    out.logical_response.assign(tr.size(), 0);
    for (std::uint32_t d = 0; d < raid_.disks; ++d) {
        disk::DiskDrive drive(drive_);
        disk::ServiceLog log = drive.service(out.disk_traces[d]);
        for (const disk::Completion &c : log.completions) {
            const std::size_t logical = fragment_of[d][c.index];
            const Tick resp = c.finish - tr.at(logical).arrival;
            out.logical_response[logical] =
                std::max(out.logical_response[logical], resp);
        }
        out.disk_logs.push_back(std::move(log));
    }
    return out;
}

} // namespace array
} // namespace dlw
