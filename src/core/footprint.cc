#include "core/footprint.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/family.hh"

namespace dlw
{
namespace core
{

FootprintAccumulator::FootprintAccumulator(Lba capacity,
                                           std::size_t extents)
    : extents_(extents), hits_(extents, 0.0)
{
    dlw_assert(capacity > 0, "capacity must be positive");
    dlw_assert(extents >= 10, "need at least ten extents");
    rep_.capacity = capacity;
    rep_.extent_blocks = std::max<Lba>(capacity / extents, 1);
}

void
FootprintAccumulator::observe(const trace::RequestBatch &batch)
{
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Lba lba = batch.lba(i);
        const Lba lba_end = batch.lbaEnd(i);
        dlw_assert(lba_end <= rep_.capacity,
                   "request beyond stated capacity");
        auto e = static_cast<std::size_t>(lba / rep_.extent_blocks);
        if (e >= extents_)
            e = extents_ - 1;
        hits_[e] += 1.0;
        total_ += 1.0;
        ++n_;

        if (have_prev_) {
            if (lba == prev_end_) {
                ++run_;
            } else {
                ++runs_;
                rep_.longest_run_requests =
                    std::max(rep_.longest_run_requests, run_ + 1);
                run_ = 0;
            }
            const double d = lba >= prev_end_
                ? static_cast<double>(lba - prev_end_)
                : static_cast<double>(prev_end_ - lba);
            seek_sum_ += d;
            ++seeks_;
        }
        prev_end_ = lba_end;
        have_prev_ = true;
    }
}

void
FootprintAccumulator::finish()
{
    if (have_prev_) {
        ++runs_;
        rep_.longest_run_requests =
            std::max(rep_.longest_run_requests, run_ + 1);
    }

    if (total_ <= 0.0)
        return;

    // Concentration over touched extents.
    std::vector<double> touched;
    for (double h : hits_) {
        if (h > 0.0)
            touched.push_back(h);
    }
    rep_.extents_touched = touched.size();
    rep_.footprint_fraction =
        static_cast<double>(touched.size()) /
        static_cast<double>(extents_);

    std::sort(touched.begin(), touched.end(),
              std::greater<double>());
    auto share_of_top = [&](double fraction) {
        const auto k = std::max<std::size_t>(
            static_cast<std::size_t>(
                fraction * static_cast<double>(extents_)),
            1);
        double s = 0.0;
        for (std::size_t i = 0; i < std::min(k, touched.size()); ++i)
            s += touched[i];
        return s / total_;
    };
    rep_.top1_share = share_of_top(0.01);
    rep_.top10_share = share_of_top(0.10);
    rep_.extent_gini = giniCoefficient(touched);

    rep_.mean_run_requests =
        static_cast<double>(n_) /
        static_cast<double>(std::max<std::uint64_t>(runs_, 1));
    rep_.mean_seek_blocks =
        seeks_ ? seek_sum_ / static_cast<double>(seeks_) : 0.0;
}

FootprintReport
analyzeFootprint(const trace::MsTrace &tr, Lba capacity,
                 std::size_t extents)
{
    FootprintAccumulator acc(capacity, extents);
    trace::MsTraceSource src(tr);
    CharacterizationPass pass;
    pass.add(acc);
    pass.run(src);
    return acc.report();
}

} // namespace core
} // namespace dlw
