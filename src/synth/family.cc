#include "synth/family.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dlw
{
namespace synth
{

const char *
driveClassName(DriveClass cls)
{
    switch (cls) {
      case DriveClass::Archival:
        return "archival";
      case DriveClass::Light:
        return "light";
      case DriveClass::Moderate:
        return "moderate";
      case DriveClass::Busy:
        return "busy";
      case DriveClass::Streamer:
        return "streamer";
    }
    return "unknown";
}

FamilyModel::FamilyModel(FamilyConfig config)
    : config_(std::move(config))
{
    dlw_assert(config_.class_weights.size() == 5,
               "family needs five class weights");
}

DriveProfile
FamilyModel::sampleProfile(std::size_t index) const
{
    // Per-drive stream keyed on (seed, index): reproducible no
    // matter which drives are sampled, or in what order.
    Rng rng = Rng(config_.seed).fork(index);

    DriveProfile p;
    p.id = config_.family + "-" + std::to_string(index);
    p.index = index;
    p.cls = static_cast<DriveClass>(rng.discrete(config_.class_weights));

    // Class centres with per-drive jitter, so even drives of one
    // class differ (the paper's "variability across drives of the
    // same family").
    auto jitter = [&rng](double centre, double rel) {
        return centre * std::exp(rng.normal(0.0, rel));
    };

    switch (p.cls) {
      case DriveClass::Archival:
        p.base_rate = jitter(0.3, 0.5);
        p.read_fraction = rng.uniform(0.2, 0.5);
        p.mean_blocks = jitter(64.0, 0.3);
        p.mean_service = static_cast<Tick>(jitter(8.0, 0.2) * kMsec);
        p.hour_sigma = 1.2;
        break;
      case DriveClass::Light:
        p.base_rate = jitter(5.0, 0.4);
        p.read_fraction = rng.uniform(0.5, 0.75);
        p.mean_blocks = jitter(16.0, 0.3);
        p.mean_service = static_cast<Tick>(jitter(6.5, 0.2) * kMsec);
        p.hour_sigma = 0.9;
        break;
      case DriveClass::Moderate:
        p.base_rate = jitter(25.0, 0.35);
        p.read_fraction = rng.uniform(0.55, 0.8);
        p.mean_blocks = jitter(16.0, 0.3);
        p.mean_service = static_cast<Tick>(jitter(6.0, 0.2) * kMsec);
        p.hour_sigma = 0.7;
        break;
      case DriveClass::Busy:
        p.base_rate = jitter(90.0, 0.3);
        p.read_fraction = rng.uniform(0.6, 0.85);
        p.mean_blocks = jitter(12.0, 0.3);
        p.mean_service = static_cast<Tick>(jitter(5.5, 0.2) * kMsec);
        p.hour_sigma = 0.6;
        break;
      case DriveClass::Streamer:
        p.base_rate = jitter(8.0, 0.4);
        p.read_fraction = rng.uniform(0.8, 0.98);
        p.mean_blocks = jitter(512.0, 0.2);
        p.mean_service = static_cast<Tick>(jitter(3.0, 0.2) * kMsec);
        p.hour_sigma = 0.7;
        p.session_prob = rng.uniform(0.01, 0.05);
        p.session_hours = rng.uniform(3.0, 10.0);
        p.session_rate = jitter(180.0, 0.15);
        p.session_util = rng.uniform(0.93, 0.995);
        break;
    }

    p.shape.night_level = rng.uniform(0.05, 0.25);
    p.shape.day_level = 1.0;
    p.shape.peak_hour = rng.uniform(10.0, 16.0);
    p.shape.weekend_level = rng.uniform(0.15, 0.6);
    p.shape.batch_level = rng.bernoulli(0.5)
        ? rng.uniform(0.3, 0.9)
        : 0.0;
    p.shape.batch_start_hour = rng.uniform(0.0, 4.0);
    p.shape.batch_hours = rng.uniform(1.0, 3.0);
    return p;
}

void
FamilyModel::synthHour(const DriveProfile &profile, Tick at, Rng &rng,
                       const RateFunction &rate, int &session_left,
                       trace::HourBucket &out) const
{
    out = trace::HourBucket{};

    // Streaming-session state machine at hour scale.
    bool in_session = session_left > 0;
    if (!in_session && profile.session_prob > 0.0 &&
        rng.bernoulli(profile.session_prob)) {
        session_left = 1 + static_cast<int>(
            rng.exponential(profile.session_hours));
        in_session = true;
    }

    double lambda;
    if (in_session) {
        lambda = profile.session_rate * 3600.0;
        --session_left;
    } else {
        const double diurnal = meanRateOver(rate, at, kHour);
        // Mean-one lognormal multiplier gives the per-hour
        // overdispersion the hour traces exhibit.
        const double s = profile.hour_sigma;
        const double burst = rng.lognormal(-s * s / 2.0, s);
        lambda = profile.base_rate * 3600.0 * diurnal * burst;
    }

    const auto total = static_cast<std::uint64_t>(
        rng.poisson(std::max(lambda, 0.0)));
    if (total == 0)
        return;

    out.reads = static_cast<std::uint64_t>(rng.poisson(
        static_cast<double>(total) * profile.read_fraction));
    out.reads = std::min(out.reads, total);
    out.writes = total - out.reads;

    // Block counts: per-request sizes vary, but at hour scale the
    // law of large numbers justifies mean +/- sqrt noise.
    auto blocks_for = [&](std::uint64_t n) {
        if (n == 0)
            return std::uint64_t{0};
        // Sum of n sizes with mean and stddev ~ mean_blocks each.
        const double nd = static_cast<double>(n);
        const double mean = nd * profile.mean_blocks;
        const double noisy =
            rng.normal(mean, std::sqrt(nd) * profile.mean_blocks);
        return static_cast<std::uint64_t>(std::max(noisy, nd));
    };
    out.read_blocks = blocks_for(out.reads);
    out.write_blocks = blocks_for(out.writes);

    if (in_session) {
        out.busy = static_cast<Tick>(profile.session_util *
                                     static_cast<double>(kHour));
    } else {
        const double busy = static_cast<double>(total) *
                            static_cast<double>(profile.mean_service);
        out.busy = static_cast<Tick>(
            std::min(busy, static_cast<double>(kHour)));
    }
}

trace::HourTrace
FamilyModel::generateHourTrace(const DriveProfile &profile,
                               std::size_t hours, Tick start) const
{
    // Second-level fork: stream 1 of the drive's own stream, so hour
    // synthesis never collides with the profile-sampling draws.
    Rng rng = Rng(config_.seed).fork(profile.index).fork(1);
    const RateFunction rate = profile.shape.build();
    trace::HourTrace out(profile.id, start);
    int session_left = 0;
    for (std::size_t h = 0; h < hours; ++h) {
        trace::HourBucket b;
        synthHour(profile, start + static_cast<Tick>(h) * kHour, rng,
                  rate, session_left, b);
        out.append(b);
    }
    return out;
}

trace::LifetimeRecord
FamilyModel::generateLifetime(const DriveProfile &profile,
                              std::size_t hours,
                              double saturated_threshold) const
{
    Rng rng = Rng(config_.seed).fork(profile.index).fork(1);
    const RateFunction rate = profile.shape.build();

    trace::LifetimeRecord rec;
    rec.drive_id = profile.id;
    rec.power_on = static_cast<Tick>(hours) * kHour;

    int session_left = 0;
    std::uint64_t run = 0;
    for (std::size_t h = 0; h < hours; ++h) {
        trace::HourBucket b;
        synthHour(profile, static_cast<Tick>(h) * kHour, rng, rate,
                  session_left, b);
        rec.reads += b.reads;
        rec.writes += b.writes;
        rec.read_blocks += b.read_blocks;
        rec.write_blocks += b.write_blocks;
        rec.busy += b.busy;
        rec.peak_hour_requests =
            std::max(rec.peak_hour_requests, b.total());
        if (b.utilization() >= saturated_threshold) {
            ++rec.saturated_hours;
            ++run;
            rec.longest_saturated_run =
                std::max(rec.longest_saturated_run, run);
        } else {
            run = 0;
        }
    }
    return rec;
}

std::vector<trace::HourTrace>
FamilyModel::generateHourTraces(std::size_t n, std::size_t hours) const
{
    std::vector<trace::HourTrace> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(generateHourTrace(sampleProfile(i), hours));
    return out;
}

trace::LifetimeTrace
FamilyModel::generateLifetimeTrace(std::size_t n,
                                   std::size_t min_hours,
                                   std::size_t max_hours) const
{
    dlw_assert(min_hours >= 1 && max_hours >= min_hours,
               "lifetime hour range invalid");
    trace::LifetimeTrace out(config_.family);
    // Family-level stream for the per-drive life lengths.
    Rng life_rng = Rng(config_.seed).fork(0x4c494645ULL); // "LIFE"
    for (std::size_t i = 0; i < n; ++i) {
        const auto hours = static_cast<std::size_t>(life_rng.uniformInt(
            static_cast<std::int64_t>(min_hours),
            static_cast<std::int64_t>(max_hours)));
        out.append(generateLifetime(sampleProfile(i), hours));
    }
    return out;
}

} // namespace synth
} // namespace dlw
