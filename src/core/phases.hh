/**
 * @file
 * Activity-phase segmentation with hysteresis.
 *
 * Long-horizon traces alternate between activity regimes: business-
 * hours load, overnight quiet, batch windows, streaming sessions.
 * Segmenting a level series (utilization per hour, requests per
 * minute) into phases turns "variability over time" into countable
 * objects — how many busy phases, how long, at what level — which
 * is how the Hour-trace findings become actionable.
 *
 * Hysteresis (separate on/off thresholds) prevents chattering around
 * a single cut level; a minimum phase length absorbs one-bin blips.
 */

#ifndef DLW_CORE_PHASES_HH
#define DLW_CORE_PHASES_HH

#include <cstddef>
#include <vector>

namespace dlw
{
namespace core
{

/** One maximal run of bins sharing an activity state. */
struct Phase
{
    /** First bin of the phase. */
    std::size_t begin = 0;
    /** One past the last bin. */
    std::size_t end = 0;
    /** True for active (above-threshold) phases. */
    bool active = false;
    /** Mean series level inside the phase. */
    double mean_level = 0.0;

    /** Number of bins covered. */
    std::size_t length() const { return end - begin; }
};

/**
 * Segment a level series into alternating idle/active phases.
 *
 * @param series        Level per bin (e.g. hourly utilization).
 * @param on_threshold  Level at or above which an idle phase turns
 *                      active.
 * @param off_threshold Level strictly below which an active phase
 *                      turns idle (must be <= on_threshold).
 * @param min_length    Phases shorter than this are merged into
 *                      their predecessor (>= 1).
 * @return Contiguous phases covering the whole series (alternating
 *         states after merging); empty for an empty series.
 */
std::vector<Phase> segmentPhases(const std::vector<double> &series,
                                 double on_threshold,
                                 double off_threshold,
                                 std::size_t min_length = 1);

/**
 * Summary statistics over a segmentation.
 */
struct PhaseSummary
{
    std::size_t active_phases = 0;
    std::size_t idle_phases = 0;
    double mean_active_length = 0.0;
    double mean_idle_length = 0.0;
    std::size_t longest_active = 0;
    std::size_t longest_idle = 0;
    /** Fraction of bins inside active phases. */
    double active_fraction = 0.0;
};

/** Summarize a segmentation. */
PhaseSummary summarizePhases(const std::vector<Phase> &phases);

} // namespace core
} // namespace dlw

#endif // DLW_CORE_PHASES_HH
