/**
 * @file
 * Workload-model extraction: trace -> parameters -> regenerator.
 *
 * The inverse of the synthesis pipeline, and the standard use of a
 * characterization study: measure a real trace, extract a compact
 * parametric model, and regenerate statistically similar synthetic
 * traffic of any length.  The extractor estimates the arrival
 * structure (Poisson vs ON/OFF burst trains), the read/write mix
 * and its run persistence, the request-size body, and the
 * sequentiality, then builds a Workload from them.
 *
 * Deliberately not extracted (documented limitation): the spatial
 * hot-spot skew — regenerated traffic reproduces sequentiality but
 * places random runs uniformly.
 */

#ifndef DLW_SYNTH_EXTRACT_HH
#define DLW_SYNTH_EXTRACT_HH

#include <string>
#include <vector>

#include "core/pass.hh"
#include "synth/workload.hh"
#include "trace/mstrace.hh"

namespace dlw
{
namespace synth
{

/**
 * Parametric model distilled from one trace.
 */
struct ExtractedModel
{
    /** Device capacity the model places requests within. */
    Lba capacity = 0;

    // Arrival structure.
    /** Long-run arrival rate, requests/second. */
    double rate = 0.0;
    /** Interarrival coefficient of variation (measured). */
    double interarrival_cv = 0.0;
    /** True when the ON/OFF structure was used (cv clearly > 1). */
    bool bursty = false;
    /** Arrival rate inside bursts, requests/second. */
    double burst_rate = 0.0;
    /** Mean ON (burst) duration in ticks. */
    Tick mean_on = 0;
    /** Mean OFF (gap) duration in ticks. */
    Tick mean_off = 0;

    // Mix.
    /** Long-run read fraction. */
    double read_fraction = 0.0;
    /** Direction-run persistence in [0, 0.95]. */
    double persistence = 0.0;

    // Sizes.
    /** Median request size in blocks. */
    BlockCount size_median = 8;
    /** Log-space spread of sizes (0 = fixed size). */
    double size_sigma = 0.0;
    /** Largest observed size in blocks. */
    BlockCount size_max = 8;

    // Spatial.
    /** Measured sequential fraction, reused as run-continue prob. */
    double sequential_fraction = 0.0;

    /**
     * Build a Workload that regenerates traffic with these
     * parameters.
     */
    Workload build() const;

    /** One-line human-readable description. */
    std::string describe() const;
};

/**
 * Streaming model extraction.
 *
 * Accumulates every per-request estimate (rate, mix, sequentiality,
 * direction changes, size body, interarrival gaps) in one trip over
 * the stream.  The seed extractor materialized tr.interarrivals()
 * twice (once for the CV, once inside the ON/OFF fit); the
 * accumulator records the gap vector exactly once per pass and
 * derives both from it.  The gap and log-size vectors are the two
 * deliberate O(n) auxiliaries — the ON/OFF segmentation and the
 * size body both need order statistics (medians) that have no
 * bounded-memory exact form; everything else is O(1) state.
 */
class ModelAccumulator : public core::TraceAccumulator
{
  public:
    /** @param capacity Device capacity in blocks (> 0). */
    explicit ModelAccumulator(Lba capacity);

    const char *name() const override { return "model"; }

    void begin(const trace::RequestSource &src) override;
    void observe(const trace::RequestBatch &batch) override;
    void finish() override;

    /** The fitted model (valid after finish()). */
    const ExtractedModel &model() const { return m_; }

  private:
    ExtractedModel m_;
    Tick duration_ = 0;
    std::size_t n_ = 0;
    std::size_t reads_ = 0;
    std::size_t seq_ = 0;
    std::size_t changes_ = 0;
    std::vector<double> gaps_;
    std::vector<double> log_sizes_;
    BlockCount max_blocks_ = 1;
    Tick prev_arrival_ = 0;
    Lba prev_end_ = 0;
    bool prev_read_ = false;
    bool have_prev_ = false;
};

/**
 * Extract a model from a trace.
 *
 * @param tr       Source trace (>= 100 requests for stable
 *                 estimates; fewer is fatal).
 * @param capacity Device capacity in blocks (>= every lbaEnd()).
 * @return The fitted model.
 */
ExtractedModel extractModel(const trace::MsTrace &tr, Lba capacity);

} // namespace synth
} // namespace dlw

#endif // DLW_SYNTH_EXTRACT_HH
