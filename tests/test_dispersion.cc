/**
 * @file
 * Unit tests for stats/dispersion (index of dispersion for counts).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/types.hh"
#include "stats/dispersion.hh"

namespace dlw
{
namespace stats
{
namespace
{

TEST(Idc, PoissonCountsNearOne)
{
    Rng rng(1);
    std::vector<double> counts;
    for (int i = 0; i < 20000; ++i)
        counts.push_back(static_cast<double>(rng.poisson(5.0)));
    EXPECT_NEAR(indexOfDispersion(counts), 1.0, 0.05);
}

TEST(Idc, BatchedArrivalsOverdispersed)
{
    // Bins are either 0 or a batch of 20: heavily overdispersed.
    Rng rng(2);
    std::vector<double> counts;
    for (int i = 0; i < 20000; ++i)
        counts.push_back(rng.bernoulli(0.1) ? 20.0 : 0.0);
    EXPECT_GT(indexOfDispersion(counts), 10.0);
}

TEST(Idc, ConstantCountsAreUnderdispersed)
{
    std::vector<double> counts(1000, 7.0);
    EXPECT_DOUBLE_EQ(indexOfDispersion(counts), 0.0);
}

TEST(Idc, EmptyAndZeroMean)
{
    EXPECT_DOUBLE_EQ(indexOfDispersion({}), 0.0);
    std::vector<double> zeros(10, 0.0);
    EXPECT_DOUBLE_EQ(indexOfDispersion(zeros), 0.0);
}

TEST(IdcAcrossScales, PoissonFlat)
{
    Rng rng(3);
    BinnedSeries base(0, kMsec, 1 << 16);
    for (std::size_t i = 0; i < base.size(); ++i)
        base.at(i) = static_cast<double>(rng.poisson(2.0));

    auto curve = idcAcrossScales(base, {1, 4, 16, 64, 256});
    ASSERT_EQ(curve.size(), 5u);
    for (const IdcPoint &p : curve)
        EXPECT_NEAR(p.idc, 1.0, 0.25) << "window " << p.window;
}

TEST(IdcAcrossScales, CorrelatedTrafficGrows)
{
    // ON/OFF block structure: long runs of busy bins followed by
    // long runs of idle bins; IDC must grow with the window.
    Rng rng(4);
    BinnedSeries base(0, kMsec, 1 << 16);
    bool on = false;
    std::size_t left = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        if (left == 0) {
            on = !on;
            left = static_cast<std::size_t>(
                rng.uniformInt(100, 1000));
        }
        --left;
        base.at(i) = on ? static_cast<double>(rng.poisson(4.0)) : 0.0;
    }
    auto curve = idcAcrossScales(base, {1, 16, 256});
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_GT(curve[1].idc, curve[0].idc * 2.0);
    EXPECT_GT(curve[2].idc, curve[1].idc * 2.0);
}

TEST(IdcAcrossScales, SkipsTooCoarseScales)
{
    BinnedSeries base(0, kMsec, 64);
    for (std::size_t i = 0; i < 64; ++i)
        base.at(i) = 1.0;
    // Factor 32 leaves only 2 windows < min_windows=8: skipped.
    auto curve = idcAcrossScales(base, {1, 2, 32});
    ASSERT_EQ(curve.size(), 2u);
    EXPECT_EQ(curve[0].window, kMsec);
    EXPECT_EQ(curve[1].window, 2 * kMsec);
}

TEST(IdcAcrossScales, PartialTrailingWindowDropped)
{
    // 100 identical bins aggregated by 33: the 1-bin remainder would
    // fake massive dispersion if it were kept.
    BinnedSeries base(0, kMsec, 100);
    for (std::size_t i = 0; i < 100; ++i)
        base.at(i) = 5.0;
    auto curve = idcAcrossScales(base, {33}, 3);
    ASSERT_EQ(curve.size(), 1u);
    EXPECT_EQ(curve[0].windows, 3u); // 3 full windows, tail dropped
    EXPECT_DOUBLE_EQ(curve[0].idc, 0.0); // constant -> no dispersion
}

TEST(IdcAcrossScales, WindowWidthsReported)
{
    BinnedSeries base(0, 10 * kMsec, 1024);
    auto curve = idcAcrossScales(base, {1, 4});
    ASSERT_EQ(curve.size(), 2u);
    EXPECT_EQ(curve[0].window, 10 * kMsec);
    EXPECT_EQ(curve[1].window, 40 * kMsec);
    EXPECT_EQ(curve[0].windows, 1024u);
    EXPECT_EQ(curve[1].windows, 256u);
}

} // anonymous namespace
} // namespace stats
} // namespace dlw
