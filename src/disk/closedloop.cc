#include "disk/closedloop.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/eventq.hh"

namespace dlw
{
namespace disk
{

namespace
{

/**
 * The closed-loop engine: N clients, one mechanical server with the
 * same cache/scheduler semantics as the trace-driven engine.
 */
class Loop
{
  public:
    Loop(const DriveConfig &drive, const RequestFactory &factory,
         const ClosedLoopConfig &config)
        : drive_(drive),
          model_(drive.geometry, drive.seek),
          cache_(drive.cache),
          sched_(drive.sched),
          factory_(factory),
          config_(config),
          rng_(config.seed)
    {
        dlw_assert(config.clients >= 1, "need at least one client");
        dlw_assert(config.mean_think >= 0, "negative think time");
        dlw_assert(config.duration > 0, "duration must be positive");
        dlw_assert(factory_, "null request factory");
    }

    ClosedLoopResult
    run()
    {
        for (std::size_t c = 0; c < config_.clients; ++c)
            scheduleThink(0);
        eq_.run(config_.duration);

        ClosedLoopResult res;
        res.completed = completed_;
        res.throughput = static_cast<double>(completed_) /
                         ticksToSeconds(config_.duration);
        res.mean_response = completed_
            ? response_sum_ /
                  static_cast<double>(completed_)
            : 0.0;
        res.utilization =
            static_cast<double>(std::min(busy_time_,
                                         config_.duration)) /
            static_cast<double>(config_.duration);
        res.cache_hits = cache_hits_;
        return res;
    }

  private:
    void
    scheduleThink(Tick now)
    {
        const Tick think = config_.mean_think > 0
            ? static_cast<Tick>(rng_.exponential(
                  static_cast<double>(config_.mean_think)) + 0.5)
            : 0;
        eq_.schedule(now + think, [this](Tick t) { submit(t); });
    }

    void
    submit(Tick now)
    {
        trace::Request r = factory_(rng_);
        r.arrival = now;

        // Cache-served requests complete immediately; the client
        // thinks again.
        if (r.isRead() && cache_.readHit(r.lba, r.blocks)) {
            ++cache_hits_;
            finish(now, now + drive_.overhead);
            return;
        }
        if (r.isWrite() && cache_.canBuffer(r.blocks)) {
            cache_.bufferWrite(r.lba, r.blocks);
            ++cache_hits_;
            finish(now, now + drive_.overhead);
            // Destage opportunistically while the clients think.
            if (!busy_)
                startNext(now);
            return;
        }

        queue_.push_back(QueuedRequest{r, next_index_++});
        if (!busy_)
            startNext(now);
    }

    void
    startNext(Tick now)
    {
        if (queue_.empty()) {
            // Opportunistic destage while every client thinks.
            if (cache_.dirty()) {
                const DirtyExtent e = cache_.popDestage();
                const MechanicalTime mt = model_.access(
                    now, head_cylinder_, e.lba, e.blocks);
                occupy(now, now + mt.total(), e.lba, e.blocks);
            }
            return;
        }
        const std::size_t pick =
            sched_.pick(queue_, head_cylinder_, drive_.geometry);
        QueuedRequest qr = queue_[pick];
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(pick));

        const MechanicalTime mt =
            model_.access(now + drive_.overhead, head_cylinder_,
                          qr.req.lba, qr.req.blocks);
        const Tick end = now + drive_.overhead + mt.total();
        if (qr.req.isRead())
            cache_.installReadSegment(qr.req.lba, qr.req.blocks);
        const Tick arrival = qr.req.arrival;
        occupy(now, end, qr.req.lba, qr.req.blocks);
        eq_.schedule(end, [this, arrival](Tick t) {
            finishServed(arrival, t);
        });
    }

    /** Mark the mechanism busy for [from, to). */
    void
    occupy(Tick from, Tick to, Lba lba, BlockCount blocks)
    {
        busy_ = true;
        busy_time_ += to - from;
        head_cylinder_ = model_.endCylinder(lba, blocks);
        eq_.schedule(to, [this](Tick t) {
            busy_ = false;
            startNext(t);
        }, sim::Priority::High);
    }

    /** A mechanically served request completes. */
    void
    finishServed(Tick arrival, Tick now)
    {
        finish(arrival, now);
    }

    /** Account a completion and restart the client. */
    void
    finish(Tick arrival, Tick end)
    {
        ++completed_;
        response_sum_ += ticksToSeconds(end - arrival);
        scheduleThink(end);
    }

    const DriveConfig &drive_;
    DiskModel model_;
    DiskCache cache_;
    Scheduler sched_;
    const RequestFactory &factory_;
    ClosedLoopConfig config_;
    Rng rng_;

    sim::EventQueue eq_;
    std::vector<QueuedRequest> queue_;
    std::size_t next_index_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t cache_hits_ = 0;
    double response_sum_ = 0.0;
    Tick busy_time_ = 0;
    std::uint64_t head_cylinder_ = 0;
    bool busy_ = false;
};

} // anonymous namespace

ClosedLoopResult
runClosedLoop(const DriveConfig &drive, const RequestFactory &factory,
              const ClosedLoopConfig &config)
{
    Loop loop(drive, factory, config);
    return loop.run();
}

} // namespace disk
} // namespace dlw
