#include "daemon/checkpoint.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/binenc.hh"
#include "common/strutil.hh"

namespace dlw
{
namespace daemon
{

std::string
checkpointPath(const std::string &dir, const std::string &id)
{
    return dir + "/" + id + ".ckpt";
}

Status
saveSessionCheckpoint(const std::string &dir, const Session &s)
{
    std::string blob;
    blob.append(kCheckpointMagic);
    BinEnc enc(blob);
    enc.u32(kCheckpointVersion);
    s.saveState(enc);

    const std::string path = checkpointPath(dir, s.id());
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC |
                          O_CLOEXEC, 0644);
    if (fd < 0) {
        return Status::ioError("checkpoint open " + tmp + ": " +
                               std::strerror(errno));
    }
    std::size_t off = 0;
    while (off < blob.size()) {
        const ssize_t n =
            ::write(fd, blob.data() + off, blob.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            return Status::ioError("checkpoint write " + tmp + ": " +
                                   std::strerror(err));
        }
        off += static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) < 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        return Status::ioError("checkpoint rename " + path + ": " +
                               std::strerror(err));
    }
    return Status();
}

StatusOr<std::shared_ptr<Session>>
loadSessionCheckpoint(const std::string &path)
{
    std::string bytes;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (f == nullptr) {
            return Status::ioError(
                "open: " + std::string(std::strerror(errno)));
        }
        char buf[64 * 1024];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            bytes.append(buf, n);
        std::fclose(f);
    }
    const std::size_t magic_len = std::strlen(kCheckpointMagic);
    if (bytes.size() < magic_len ||
        std::memcmp(bytes.data(), kCheckpointMagic, magic_len) != 0)
        return Status::corruptData("bad magic");
    BinDec dec(bytes.data() + magic_len, bytes.size() - magic_len);
    const std::uint32_t version = dec.u32();
    if (!dec.ok())
        return Status::truncated("truncated checkpoint header");
    if (version < kCheckpointVersion) {
        // A silent default here would resurrect the session in the
        // wrong QoS lane (pre-v3) or strip its trace identity and
        // latency account (pre-v4); the operator must re-stream.
        return Status::failedPrecondition(
            "checkpoint version " + std::to_string(version) +
            " predates the trace/latency session tail (want " +
            std::to_string(kCheckpointVersion) +
            "); refusing to restore a degraded session");
    }
    if (version > kCheckpointVersion) {
        return Status::failedPrecondition(
            "checkpoint version " + std::to_string(version) +
            " is newer than this daemon supports (" +
            std::to_string(kCheckpointVersion) + ")");
    }
    std::shared_ptr<Session> s = Session::restore(dec);
    if (s == nullptr)
        return Status::corruptData("truncated or garbled checkpoint");
    return s;
}

std::vector<std::string>
listCheckpointFiles(const std::string &dir)
{
    std::vector<std::string> out;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return out;
    while (dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (endsWith(name, ".ckpt"))
            out.push_back(dir + "/" + name);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

void
removeSessionCheckpoint(const std::string &dir, const std::string &id)
{
    ::unlink(checkpointPath(dir, id).c_str());
}

} // namespace daemon
} // namespace dlw
