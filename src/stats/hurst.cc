#include "stats/hurst.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "stats/summary.hh"

namespace dlw
{
namespace stats
{

namespace
{

/**
 * Geometrically spaced integer factors in [lo, hi], deduplicated.
 */
std::vector<std::size_t>
geometricFactors(std::size_t lo, std::size_t hi, std::size_t points)
{
    std::vector<std::size_t> out;
    if (lo < 1)
        lo = 1;
    if (hi < lo)
        return out;
    const double llo = std::log(static_cast<double>(lo));
    const double lhi = std::log(static_cast<double>(hi));
    for (std::size_t i = 0; i < points; ++i) {
        double f = points == 1
            ? llo
            : llo + (lhi - llo) * static_cast<double>(i) /
                  static_cast<double>(points - 1);
        auto v = static_cast<std::size_t>(std::lround(std::exp(f)));
        v = std::clamp<std::size_t>(v, lo, hi);
        if (out.empty() || out.back() != v)
            out.push_back(v);
    }
    return out;
}

/** Sample variance of an m-aggregated-and-normalized series. */
double
aggregatedVariance(const std::vector<double> &xs, std::size_t m)
{
    Summary s;
    const std::size_t blocks = xs.size() / m;
    for (std::size_t b = 0; b < blocks; ++b) {
        double acc = 0.0;
        for (std::size_t j = 0; j < m; ++j)
            acc += xs[b * m + j];
        s.add(acc / static_cast<double>(m));
    }
    return s.sampleVariance();
}

/** Mean rescaled range over non-overlapping blocks of size n. */
double
meanRescaledRange(const std::vector<double> &xs, std::size_t n)
{
    const std::size_t blocks = xs.size() / n;
    double total = 0.0;
    std::size_t used = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
        const double *block = xs.data() + b * n;
        double mean = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            mean += block[j];
        mean /= static_cast<double>(n);

        double cum = 0.0;
        double lo = 0.0, hi = 0.0;
        double ss = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            const double d = block[j] - mean;
            cum += d;
            lo = std::min(lo, cum);
            hi = std::max(hi, cum);
            ss += d * d;
        }
        const double s = std::sqrt(ss / static_cast<double>(n));
        if (s > 0.0) {
            total += (hi - lo) / s;
            ++used;
        }
    }
    return used ? total / static_cast<double>(used) : 0.0;
}

} // anonymous namespace

HurstEstimate
hurstAggregatedVariance(const std::vector<double> &xs,
                        std::size_t min_factor, std::size_t max_factor,
                        std::size_t points)
{
    dlw_assert(xs.size() >= 32,
               "aggregated-variance Hurst needs >= 32 samples");
    if (max_factor == 0)
        max_factor = xs.size() / 8;
    max_factor = std::min(max_factor, xs.size() / 8);
    if (max_factor < min_factor)
        max_factor = min_factor;

    HurstEstimate est;
    for (std::size_t m : geometricFactors(min_factor, max_factor, points)) {
        double var = aggregatedVariance(xs, m);
        if (var <= 0.0)
            continue;
        est.log_scale.push_back(std::log10(static_cast<double>(m)));
        est.log_value.push_back(std::log10(var));
    }
    if (est.log_scale.size() < 2)
        return est; // degenerate: report H = 0.5, r2 = 0

    LineFit fit = leastSquares(est.log_scale, est.log_value);
    // slope beta = 2H - 2  =>  H = 1 + beta/2
    est.h = std::clamp(1.0 + fit.slope / 2.0, 0.0, 1.0);
    est.r2 = fit.r2;
    est.points = est.log_scale.size();
    return est;
}

HurstEstimate
hurstRescaledRange(const std::vector<double> &xs, std::size_t points)
{
    dlw_assert(xs.size() >= 64, "R/S Hurst needs >= 64 samples");

    HurstEstimate est;
    const std::size_t lo = 8;
    const std::size_t hi = xs.size() / 4;
    for (std::size_t n : geometricFactors(lo, hi, points)) {
        double rs = meanRescaledRange(xs, n);
        if (rs <= 0.0)
            continue;
        est.log_scale.push_back(std::log10(static_cast<double>(n)));
        est.log_value.push_back(std::log10(rs));
    }
    if (est.log_scale.size() < 2)
        return est;

    LineFit fit = leastSquares(est.log_scale, est.log_value);
    est.h = std::clamp(fit.slope, 0.0, 1.0);
    est.r2 = fit.r2;
    est.points = est.log_scale.size();
    return est;
}

} // namespace stats
} // namespace dlw
