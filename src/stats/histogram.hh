/**
 * @file
 * Fixed-memory histograms for trace-scale data.
 *
 * Two flavours:
 *  - LinearHistogram: equal-width bins on [lo, hi), with underflow
 *    and overflow side bins.  Good for bounded quantities such as
 *    utilization fractions.
 *  - LogHistogram: log-spaced bins, the right tool for quantities
 *    spanning many orders of magnitude (interarrival times, idle
 *    intervals), which is most of what a disk trace contains.
 *
 * Both support quantile interpolation and merging (for per-drive to
 * family roll-ups).
 */

#ifndef DLW_STATS_HISTOGRAM_HH
#define DLW_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace dlw
{
namespace stats
{

/**
 * Equal-width histogram with explicit under/overflow bins.
 */
class LinearHistogram
{
  public:
    /**
     * @param lo    Inclusive lower edge of the first regular bin.
     * @param hi    Exclusive upper edge of the last regular bin.
     * @param bins  Number of regular bins (>= 1).
     */
    LinearHistogram(double lo, double hi, std::size_t bins);

    /** Record one observation. */
    void add(double x);

    /**
     * Record a batch of unit-weight observations through the
     * dispatched SIMD binning kernel.  Bit-identical to calling
     * add() per element, in order.
     */
    void addBatch(const double *x, std::size_t n);

    /** Record an observation with a fractional weight. */
    void addWeighted(double x, double weight);

    /** Merge a histogram with identical bin layout. */
    void merge(const LinearHistogram &other);

    /** Total recorded weight including under/overflow. */
    double total() const { return total_; }

    /** Weight below the first regular bin. */
    double underflow() const { return underflow_; }

    /** Weight at or above the upper edge. */
    double overflow() const { return overflow_; }

    /** Number of regular bins. */
    std::size_t binCount() const { return counts_.size(); }

    /** Weight recorded in regular bin i. */
    double binWeight(std::size_t i) const;

    /** Inclusive lower edge of bin i. */
    double binLower(std::size_t i) const;

    /** Exclusive upper edge of bin i. */
    double binUpper(std::size_t i) const;

    /** Midpoint of bin i. */
    double binMid(std::size_t i) const;

    /**
     * Interpolated quantile.
     *
     * @param q Quantile in [0, 1].
     * @return Approximate value below which fraction q of the weight
     *         lies; clamps into the regular range.
     */
    double quantile(double q) const;

    /** Mean estimated from bin midpoints. */
    double approximateMean() const;

  private:
    double lo_;
    double hi_;
    double width_;
    double inv_width_; // reciprocal used by the bin map; see .cc
    double total_ = 0.0;
    double underflow_ = 0.0;
    double overflow_ = 0.0;
    std::vector<double> counts_;
};

/**
 * Log-spaced histogram covering [lo, hi) with a fixed number of bins
 * per decade.
 */
class LogHistogram
{
  public:
    /**
     * @param lo             Positive lower edge of the first bin.
     * @param hi             Upper edge; must exceed lo.
     * @param bins_per_decade Resolution (>= 1).
     */
    LogHistogram(double lo, double hi, std::size_t bins_per_decade);

    /** Record one observation (values <= 0 count as underflow). */
    void add(double x);

    /**
     * Record a batch of unit-weight observations through the
     * dispatched SIMD binning kernel.  Bit-identical to calling
     * add() per element, in order.
     */
    void addBatch(const double *x, std::size_t n);

    /** Record an observation with fractional weight. */
    void addWeighted(double x, double weight);

    /** Merge a histogram with identical layout. */
    void merge(const LogHistogram &other);

    /** Total recorded weight. */
    double total() const { return total_; }

    /** Weight below lo (including non-positive samples). */
    double underflow() const { return underflow_; }

    /** Weight at or above hi. */
    double overflow() const { return overflow_; }

    /** Number of regular bins. */
    std::size_t binCount() const { return counts_.size(); }

    /** Weight in regular bin i. */
    double binWeight(std::size_t i) const;

    /** Inclusive (geometric) lower edge of bin i. */
    double binLower(std::size_t i) const;

    /** Exclusive upper edge of bin i. */
    double binUpper(std::size_t i) const;

    /** Geometric midpoint of bin i. */
    double binMid(std::size_t i) const;

    /** Interpolated quantile (log-linear within a bin). */
    double quantile(double q) const;

    /**
     * Complementary CDF evaluated at bin edges.
     *
     * @return Pairs (edge, P(X >= edge)) for each regular bin lower
     *         edge, useful for plotting heavy tails.
     */
    std::vector<std::pair<double, double>> ccdf() const;

  private:
    double log_lo_;
    double log_width_;
    double inv_log_width_; // == bins_per_decade, used by the bin map
    double lo_;
    double hi_;
    double total_ = 0.0;
    double underflow_ = 0.0;
    double overflow_ = 0.0;
    std::vector<double> counts_;
};

} // namespace stats
} // namespace dlw

#endif // DLW_STATS_HISTOGRAM_HH
