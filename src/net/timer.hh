/**
 * @file
 * Hashed timer wheel for connection deadlines.
 *
 * The epoll loop needs "when does the nearest deadline expire" and
 * "which connections are overdue" without sorting anything per
 * event: deadlines are hashed into fixed-width time slots and each
 * epoll wake drains only the slots the clock has passed, so
 * schedule and expiry are O(1) amortized for any number of armed
 * connections.
 *
 * Cancellation is lazy, which keeps the data structure trivial: a
 * connection reschedules by inserting a new entry and never removes
 * the old one.  Expired entries therefore carry the deadline they
 * were scheduled with, and the caller re-validates each candidate
 * token against the connection's *current* deadline — a stale entry
 * (connection closed, deadline pushed out by progress) is simply
 * dropped or the token rescheduled.  The wheel may briefly hold
 * more entries than there are connections; each is a 16-byte pair
 * and dies at its original expiry, so the overhead is bounded by
 * the reschedule rate times the timeout width.
 */

#ifndef DLW_NET_TIMER_HH
#define DLW_NET_TIMER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlw
{
namespace net
{

/**
 * Fixed-slot hashed timer wheel over a monotonic nanosecond clock.
 */
class TimerWheel
{
  public:
    /**
     * @param granularity_ns Slot width; deadlines within one slot
     *                       expire together (default 10 ms).
     * @param slots          Number of wheel slots (default 256, so
     *                       one lap covers ~2.5 s at the default
     *                       granularity; longer deadlines survive
     *                       laps via their stored expiry).
     */
    explicit TimerWheel(std::uint64_t granularity_ns = 10'000'000,
                        std::size_t slots = 256);

    /** Arm (or re-arm) a token to expire at the given deadline. */
    void schedule(std::uint64_t token, std::uint64_t deadline_ns);

    /**
     * Append every token whose scheduled deadline is <= now.  A
     * token appears once per due entry; the caller re-validates
     * against live state (lazy cancellation).
     */
    void expire(std::uint64_t now_ns, std::vector<std::uint64_t> &due);

    /**
     * Earliest scheduled deadline, or UINT64_MAX when the wheel is
     * empty.  Includes stale entries — as a wakeup hint that only
     * ever fires early, never late.
     */
    std::uint64_t nextDeadline() const;

    /** Entries currently stored (including stale ones). */
    std::size_t size() const { return n_; }

  private:
    struct Entry
    {
        std::uint64_t token;
        std::uint64_t deadline;
    };

    std::vector<std::vector<Entry>> slots_;
    std::uint64_t gran_;
    std::uint64_t last_tick_ = 0;
    bool primed_ = false;
    std::size_t n_ = 0;
};

} // namespace net
} // namespace dlw

#endif // DLW_NET_TIMER_HH
