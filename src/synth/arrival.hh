/**
 * @file
 * Arrival-process models.
 *
 * The data substitution for the paper's closed traces starts here:
 * each process generates interarrival gaps with a controlled degree
 * of burstiness, from memoryless Poisson (the null model every
 * characterization paper rejects) through ON/OFF and Markov-
 * modulated processes to heavy-tailed renewal processes.
 */

#ifndef DLW_SYNTH_ARRIVAL_HH
#define DLW_SYNTH_ARRIVAL_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace dlw
{
namespace synth
{

/**
 * Abstract source of interarrival gaps.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /**
     * Draw the gap to the next arrival.
     *
     * @param rng Random source.
     * @return Gap in ticks (>= 0).
     */
    virtual Tick nextGap(Rng &rng) = 0;

    /** Long-run mean arrival rate, in arrivals per second. */
    virtual double meanRate() const = 0;

    /** Reset any internal state (e.g. modulating chain). */
    virtual void reset() {}

    /**
     * Generate all arrival ticks inside [start, start + duration).
     */
    std::vector<Tick> generate(Rng &rng, Tick start, Tick duration);
};

/**
 * Homogeneous Poisson arrivals.
 */
class PoissonArrivals : public ArrivalProcess
{
  public:
    /** @param rate Arrivals per second (> 0). */
    explicit PoissonArrivals(double rate);

    Tick nextGap(Rng &rng) override;
    double meanRate() const override { return rate_; }

  private:
    double rate_;
    double mean_gap_; // ticks
};

/**
 * Exponential ON/OFF arrivals: Poisson bursts at burst_rate during
 * exponentially distributed ON periods separated by exponentially
 * distributed OFF periods.
 */
class OnOffArrivals : public ArrivalProcess
{
  public:
    /**
     * @param burst_rate Arrivals per second while ON (> 0).
     * @param mean_on    Mean ON duration in ticks (> 0).
     * @param mean_off   Mean OFF duration in ticks (> 0).
     */
    OnOffArrivals(double burst_rate, Tick mean_on, Tick mean_off);

    Tick nextGap(Rng &rng) override;
    double meanRate() const override;
    void reset() override;

  private:
    double burst_rate_;
    double mean_on_;
    double mean_off_;
    /** Remaining ON time before the next OFF period, in ticks. */
    double on_left_ = 0.0;
};

/**
 * Two-state Markov-modulated Poisson process.
 */
class MmppArrivals : public ArrivalProcess
{
  public:
    /**
     * @param rate0   Arrival rate in state 0, per second (>= 0).
     * @param rate1   Arrival rate in state 1, per second (>= 0).
     * @param mean_sojourn0 Mean time in state 0, ticks (> 0).
     * @param mean_sojourn1 Mean time in state 1, ticks (> 0).
     */
    MmppArrivals(double rate0, double rate1, Tick mean_sojourn0,
                 Tick mean_sojourn1);

    Tick nextGap(Rng &rng) override;
    double meanRate() const override;
    void reset() override;

  private:
    double rate_[2];
    double sojourn_[2]; // ticks
    int state_ = 0;
};

/**
 * Renewal process with Pareto-distributed gaps: heavy-tailed
 * interarrivals whose clustering survives aggregation, the classic
 * generator of self-similar counts.
 */
class ParetoRenewal : public ArrivalProcess
{
  public:
    /**
     * @param shape Tail index alpha (> 1 for a finite mean).
     * @param rate  Target mean arrival rate per second (> 0); the
     *              scale parameter is derived from it.
     */
    ParetoRenewal(double shape, double rate);

    Tick nextGap(Rng &rng) override;
    double meanRate() const override { return rate_; }

  private:
    double shape_;
    double rate_;
    double scale_; // ticks
};

/**
 * Renewal process with Weibull gaps (shape < 1 gives bursty,
 * long-tailed gaps; shape == 1 reduces to Poisson).
 */
class WeibullRenewal : public ArrivalProcess
{
  public:
    /**
     * @param shape Weibull shape k (> 0).
     * @param rate  Target mean arrival rate per second (> 0).
     */
    WeibullRenewal(double shape, double rate);

    Tick nextGap(Rng &rng) override;
    double meanRate() const override { return rate_; }

  private:
    double shape_;
    double rate_;
    double scale_; // ticks
};

} // namespace synth
} // namespace dlw

#endif // DLW_SYNTH_ARRIVAL_HH
