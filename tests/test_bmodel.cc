/**
 * @file
 * Tests for the b-model cascade generator.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hh"
#include "stats/dispersion.hh"
#include "synth/bmodel.hh"

namespace dlw
{
namespace synth
{
namespace
{

TEST(BModel, CountsConserveTotal)
{
    Rng rng(1);
    BModel bm(0.75, 12);
    auto counts = bm.counts(rng, 1'000'000);
    EXPECT_EQ(counts.size(), std::size_t{1} << 12);
    const std::uint64_t sum =
        std::accumulate(counts.begin(), counts.end(),
                        std::uint64_t{0});
    EXPECT_EQ(sum, 1'000'000u);
}

TEST(BModel, UnbiasedCascadeIsSmooth)
{
    Rng rng(2);
    BModel bm(0.5, 10);
    auto counts = bm.counts(rng, 1 << 20);
    // Exactly equal split at b = 0.5 (up to rounding): each bin gets
    // 1024 +- 1.
    for (std::uint64_t c : counts)
        EXPECT_NEAR(static_cast<double>(c), 1024.0, 2.0);
}

TEST(BModel, BiasIncreasesDispersion)
{
    Rng rng(3);
    auto idc_of = [&rng](double bias) {
        BModel bm(bias, 12);
        auto counts = bm.counts(rng, 1 << 22);
        std::vector<double> v(counts.begin(), counts.end());
        return stats::indexOfDispersion(v);
    };
    const double mild = idc_of(0.6);
    const double strong = idc_of(0.85);
    EXPECT_GT(strong, mild * 5.0);
}

TEST(BModel, ArrivalsSortedInsideWindow)
{
    Rng rng(4);
    BModel bm(0.8, 10);
    auto arrivals = bm.arrivals(rng, 100, kSec, 50000);
    EXPECT_EQ(arrivals.size(), 50000u);
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        EXPECT_GE(arrivals[i], 100);
        EXPECT_LT(arrivals[i], 100 + kSec);
        if (i > 0)
            EXPECT_GE(arrivals[i], arrivals[i - 1]);
    }
}

TEST(BModel, ArrivalsExhibitScaleFreeBurstiness)
{
    Rng rng(5);
    BModel bm(0.85, 14);
    auto arrivals = bm.arrivals(rng, 0, 100 * kSec, 500000);

    // Count below the cascade's own bin width (~6 ms) so the IDC
    // has headroom to keep growing through it.
    stats::BinnedSeries counts(0, kMsec);
    for (Tick t : arrivals)
        counts.accumulateAt(t, 1.0);
    counts.extendTo(100 * kSec - 1);
    auto curve = stats::idcAcrossScales(counts, {1, 16, 256, 4096});
    ASSERT_EQ(curve.size(), 4u);
    // IDC must keep growing across three orders of magnitude.
    EXPECT_GT(curve[1].idc, curve[0].idc * 2.0);
    EXPECT_GT(curve[2].idc, curve[1].idc * 2.0);
    EXPECT_GT(curve[3].idc, curve[2].idc * 2.0);
}

TEST(BModel, HurstOfBiasEndpoints)
{
    // b -> 0.5+: variance exponent -> 1 (clipped).
    EXPECT_NEAR(BModel::hurstOfBias(0.5), 1.0, 1e-9);
    // Strong bias lowers the aggregated-variance H toward 0.5.
    EXPECT_GT(BModel::hurstOfBias(0.7), BModel::hurstOfBias(0.9));
    EXPECT_GE(BModel::hurstOfBias(0.99), 0.5);
    // Spot value: b = 0.8 -> (1 - log2(0.68)) / 2 ~ 0.778.
    EXPECT_NEAR(BModel::hurstOfBias(0.8), 0.778, 0.01);
}

TEST(BModel, AccessorsAndBins)
{
    BModel bm(0.7, 8);
    EXPECT_DOUBLE_EQ(bm.bias(), 0.7);
    EXPECT_EQ(bm.levels(), 8u);
    EXPECT_EQ(bm.bins(), 256u);
}

TEST(BModelDeathTest, BadParameters)
{
    EXPECT_DEATH(BModel(0.4, 8), "bias");
    EXPECT_DEATH(BModel(1.0, 8), "bias");
    EXPECT_DEATH(BModel(0.7, 0), "levels");
    BModel bm(0.7, 4);
    Rng rng(6);
    EXPECT_DEATH(bm.arrivals(rng, 0, 0, 10), "window must be positive");
}

} // anonymous namespace
} // namespace synth
} // namespace dlw
