/**
 * @file
 * Sharded multi-drive characterization pipeline.
 *
 * Scales the repo's single-drive path (generate a workload, service
 * it through the mechanical drive model, characterize the result) to
 * N drives: each drive is one shard, shards run concurrently on the
 * work-stealing pool, and the merge layer reduces them — in drive
 * order — to a fleet aggregate with the paper's cross-drive views
 * (E11 variability spread, E8 saturated-streaming structure).
 *
 * Output is bit-identical at any thread count; see fleet/merge.hh
 * for the three rules that guarantee it.
 */

#ifndef DLW_FLEET_PIPELINE_HH
#define DLW_FLEET_PIPELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fleet/merge.hh"

namespace dlw
{
namespace fleet
{

/** Workload class every drive of the fleet runs. */
enum class FleetPreset
{
    Oltp,
    FileServer,
    Streaming,
    Backup,
    /** Rotate the four classes by drive index (the default). */
    Mixed,
};

/** Human-readable preset name. */
const char *fleetPresetName(FleetPreset preset);

/** Parse a preset name; fatal on an unknown one. */
FleetPreset parseFleetPreset(const std::string &name);

/**
 * Fleet run configuration.
 */
struct FleetConfig
{
    /** Number of drives to characterize. */
    std::size_t drives = 64;
    /** Worker threads (does not affect output, only wall time). */
    std::size_t threads = 1;
    /** Workload preset. */
    FleetPreset preset = FleetPreset::Mixed;
    /** Master seed; drive k uses stream fork(k). */
    std::uint64_t seed = 20090614;
    /** Mean arrival rate per drive, requests/second. */
    double rate = 60.0;
    /** Observation window per drive. */
    Tick window = 2 * kMinute;
    /** Use the nearline drive model instead of enterprise. */
    bool nearline = false;
};

/**
 * Everything a fleet run produces.
 */
struct FleetResult
{
    /** Per-drive shards, indexed by drive. */
    std::vector<DriveShard> shards;
    /** Ordered reduction of the shards. */
    FleetAggregate aggregate;
};

/**
 * Characterize one drive of the fleet.
 *
 * Pure function of (config, index): generates the drive's workload
 * from RNG stream fork(index), services it through the disk model,
 * and distils the shard statistics.  Safe to call from any thread.
 */
DriveShard characterizeDrive(const FleetConfig &config,
                             std::size_t index);

/**
 * Run the whole fleet on config.threads workers and reduce.
 */
FleetResult runFleet(const FleetConfig &config);

/**
 * Render the cross-drive variability report (E8/E11 view).
 *
 * Deliberately excludes thread count and timing so the report is
 * byte-identical across thread counts.
 */
std::string renderFleetReport(const FleetConfig &config,
                              const FleetResult &result);

} // namespace fleet
} // namespace dlw

#endif // DLW_FLEET_PIPELINE_HH
