/**
 * @file
 * Process-wide metrics registry: counters, gauges, and value/latency
 * histograms, updated from hot paths and read as a consistent
 * snapshot.
 *
 * The design mirrors the fault-injection harness (common/fault.hh):
 * nothing accumulates unless a sink is attached via obs::enable()
 * (what `dlwtool --metrics` and the bench report guard do), and the
 * disarmed cost of every mutator is exactly one relaxed atomic load —
 * safe to leave on hot paths.
 *
 * Armed costs stay off the critical path too:
 *
 *  - Counter::add is a relaxed fetch-add on a cache-line-padded,
 *    thread-striped slot (lock-free; no two hot threads share a line
 *    in the common case).
 *  - Gauge::set/add are single relaxed atomic ops.
 *  - Histogram::record takes a thread-striped shard's mutex (never
 *    contended in practice) and feeds the mergeable
 *    stats::Summary + stats::LogHistogram pair; shards are merged
 *    only at snapshot time.
 *
 * Metrics register on first use and live for the process lifetime,
 * so call sites may cache references:
 *
 *     static obs::Counter &c = obs::counter("ingest.records_read", "records", "trace",
 *         "records accepted into a trace");
 *     c.add(n);
 *
 * Every registered name must be documented in docs/METRICS.md —
 * scripts/check_metrics_docs.sh lints registration call sites against
 * the reference, so keep the name literal on the same line as the
 * obs::counter/gauge/histogram call.
 */

#ifndef DLW_OBS_METRICS_HH
#define DLW_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stats/histogram.hh"
#include "stats/summary.hh"

namespace dlw
{
namespace obs
{

namespace detail
{

extern std::atomic<int> g_armed_sinks;

/** True when at least one sink is attached (one relaxed load). */
inline bool
armed()
{
    return g_armed_sinks.load(std::memory_order_relaxed) != 0;
}

/** Slots per striped metric; power of two. */
constexpr std::size_t kStripes = 16;

/** This thread's stable stripe index in [0, kStripes). */
std::size_t stripeIndex();

} // namespace detail

/** Attach a sink: metrics (and spans) start accumulating. */
void enable();

/** Detach one sink; fully disarmed when the last one detaches. */
void disable();

/** True while at least one sink is attached. */
bool enabled();

/** What a registered metric is. */
enum class MetricType
{
    kCounter,
    kGauge,
    kHistogram,
};

/** "counter" / "gauge" / "histogram". */
const char *metricTypeName(MetricType type);

/** Registration metadata carried into every snapshot and export. */
struct MetricInfo
{
    std::string name;      ///< dotted path, e.g. "ingest.records_read"
    MetricType type = MetricType::kCounter;
    std::string unit;      ///< "records", "bytes", "s", ...
    std::string subsystem; ///< owning subsystem ("trace", "fleet", ...)
    std::string help;      ///< one-line description
};

/**
 * Monotonic event counter, thread-striped and lock-free.
 */
class Counter
{
  public:
    /** Add delta (no-op while disarmed). */
    void
    add(std::uint64_t delta = 1)
    {
        if (!detail::armed())
            return;
        slots_[detail::stripeIndex()].v.fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Sum over all stripes. */
    std::uint64_t value() const;

    /** Zero every stripe (tests and per-run isolation). */
    void reset();

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> v{0};
    };
    std::array<Slot, detail::kStripes> slots_{};
};

/**
 * Point-in-time integer level (queue depth, active workers).
 */
class Gauge
{
  public:
    /** Set the level (no-op while disarmed). */
    void
    set(std::int64_t v)
    {
        if (!detail::armed())
            return;
        v_.store(v, std::memory_order_relaxed);
    }

    /** Adjust the level by delta (no-op while disarmed). */
    void
    add(std::int64_t delta)
    {
        if (!detail::armed())
            return;
        v_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Value/latency distribution built on the repo's mergeable stats
 * types: each thread stripe owns a stats::Summary (exact moments)
 * plus a stats::LogHistogram (quantiles), merged on snapshot.
 */
class Histogram
{
  public:
    /**
     * @param lo               Lower histogram edge (> 0).
     * @param hi               Upper histogram edge.
     * @param bins_per_decade  Log-histogram resolution.
     */
    Histogram(double lo, double hi, std::size_t bins_per_decade);

    /** Record one observation (no-op while disarmed). */
    void record(double x);

    /** Merge all stripes into one Summary. */
    stats::Summary summarize() const;

    /** Merge all stripes into one LogHistogram. */
    stats::LogHistogram merged() const;

    /** Clear every stripe. */
    void reset();

  private:
    struct Stripe
    {
        Stripe(double lo, double hi, std::size_t bpd)
            : hist(lo, hi, bpd)
        {
        }
        mutable std::mutex mu;
        stats::Summary sum;
        stats::LogHistogram hist;
    };
    double lo_;
    double hi_;
    std::size_t bins_per_decade_;
    std::vector<std::unique_ptr<Stripe>> stripes_;
};

/**
 * One metric's state at snapshot time.
 */
struct MetricSnapshot
{
    MetricInfo info;
    /** Counter value, or histogram observation count. */
    std::uint64_t count = 0;
    /** Gauge level. */
    std::int64_t level = 0;
    // Histogram distribution (zero when count == 0).
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * The process-wide registry.  Metrics register on first use, keyed
 * by name, and are never unregistered, so returned references stay
 * valid for the process lifetime.  Registering the same name twice
 * returns the existing metric (the types must agree).
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name, const std::string &unit,
                     const std::string &subsystem,
                     const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &unit,
                 const std::string &subsystem, const std::string &help);
    Histogram &histogram(const std::string &name,
                         const std::string &unit,
                         const std::string &subsystem,
                         const std::string &help, double lo = 1e-6,
                         double hi = 1e4,
                         std::size_t bins_per_decade = 4);

    /** All registered metrics, ascending by name (deterministic). */
    std::vector<MetricSnapshot> snapshotMetrics() const;

    /** Zero every metric's value; registrations stay. */
    void resetValues();

  private:
    Registry() = default;

    struct Entry
    {
        MetricInfo info;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &entryFor(const std::string &name, MetricType type,
                    const std::string &unit,
                    const std::string &subsystem,
                    const std::string &help);

    mutable std::mutex mu_;
    /** Sorted by name; values are stable heap objects. */
    std::vector<std::unique_ptr<Entry>> entries_;
};

/** Shorthand for Registry::instance().counter(...). */
Counter &counter(const std::string &name, const std::string &unit,
                 const std::string &subsystem, const std::string &help);

/** Shorthand for Registry::instance().gauge(...). */
Gauge &gauge(const std::string &name, const std::string &unit,
             const std::string &subsystem, const std::string &help);

/** Shorthand for Registry::instance().histogram(...). */
Histogram &histogram(const std::string &name, const std::string &unit,
                     const std::string &subsystem,
                     const std::string &help, double lo = 1e-6,
                     double hi = 1e4, std::size_t bins_per_decade = 4);

/**
 * RAII timer feeding a Histogram (seconds).  Disarmed cost: one
 * relaxed load; no clock is read.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &h)
        : h_(h), armed_(detail::armed())
    {
        if (armed_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (!armed_)
            return;
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start_;
        h_.record(dt.count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &h_;
    bool armed_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * RAII sink for tests and tools: enables metrics on construction,
 * disables on destruction.  Does not reset values; pair with
 * resetAll() when a test needs a clean slate.
 */
class ScopedEnable
{
  public:
    ScopedEnable() { enable(); }
    ~ScopedEnable() { disable(); }

    ScopedEnable(const ScopedEnable &) = delete;
    ScopedEnable &operator=(const ScopedEnable &) = delete;
};

/** Zero all metric values and clear the span tree. */
void resetAll();

} // namespace obs
} // namespace dlw

#endif // DLW_OBS_METRICS_HH
