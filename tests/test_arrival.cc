/**
 * @file
 * Tests for synth/arrival: every process must hit its declared mean
 * rate (parameterized sweep) and the bursty processes must be
 * measurably burstier than Poisson.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "stats/summary.hh"
#include "synth/arrival.hh"

namespace dlw
{
namespace synth
{
namespace
{

std::unique_ptr<ArrivalProcess>
makeProcess(const std::string &kind, double rate)
{
    if (kind == "poisson")
        return std::make_unique<PoissonArrivals>(rate);
    if (kind == "onoff")
        return std::make_unique<OnOffArrivals>(rate / 0.25, 500 * kMsec,
                                               1500 * kMsec);
    if (kind == "mmpp")
        return std::make_unique<MmppArrivals>(rate * 0.4, rate * 2.8,
                                              3 * kSec, kSec);
    if (kind == "pareto")
        return std::make_unique<ParetoRenewal>(1.8, rate);
    if (kind == "weibull")
        return std::make_unique<WeibullRenewal>(0.5, rate);
    return nullptr;
}

class RateSweep
    : public ::testing::TestWithParam<std::tuple<std::string, double>>
{
};

TEST_P(RateSweep, MeanRateMatchesDeclared)
{
    const auto [kind, rate] = GetParam();
    auto proc = makeProcess(kind, rate);
    ASSERT_NE(proc, nullptr);
    EXPECT_NEAR(proc->meanRate(), rate, rate * 0.01) << kind;

    Rng rng(1234);
    const Tick window = 2000 * kSec;
    auto arrivals = proc->generate(rng, 0, window);
    const double measured = static_cast<double>(arrivals.size()) /
                            ticksToSeconds(window);
    // Renewal processes with heavy tails converge slowly: 15%.
    EXPECT_NEAR(measured, rate, rate * 0.15) << kind;
}

INSTANTIATE_TEST_SUITE_P(
    AllProcesses, RateSweep,
    ::testing::Combine(
        ::testing::Values("poisson", "onoff", "mmpp", "pareto",
                          "weibull"),
        ::testing::Values(5.0, 50.0)));

double
gapCv(ArrivalProcess &proc, std::uint64_t seed)
{
    Rng rng(seed);
    stats::Summary s;
    for (int i = 0; i < 200000; ++i)
        s.add(static_cast<double>(proc.nextGap(rng)));
    return s.cv();
}

TEST(Arrival, PoissonGapCvIsOne)
{
    PoissonArrivals p(100.0);
    EXPECT_NEAR(gapCv(p, 1), 1.0, 0.05);
}

TEST(Arrival, BurstyProcessesExceedPoissonCv)
{
    OnOffArrivals onoff(400.0, 500 * kMsec, 1500 * kMsec);
    MmppArrivals mmpp(20.0, 500.0, 3 * kSec, kSec);
    WeibullRenewal wb(0.4, 100.0);
    EXPECT_GT(gapCv(onoff, 2), 1.5);
    EXPECT_GT(gapCv(mmpp, 3), 1.3);
    EXPECT_GT(gapCv(wb, 4), 1.5);
}

TEST(Arrival, GenerateStaysInWindow)
{
    PoissonArrivals p(1000.0);
    Rng rng(5);
    auto arrivals = p.generate(rng, 500, kSec);
    ASSERT_FALSE(arrivals.empty());
    for (Tick t : arrivals) {
        EXPECT_GE(t, 500);
        EXPECT_LT(t, 500 + kSec);
    }
    // Sorted by construction.
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GE(arrivals[i], arrivals[i - 1]);
}

TEST(Arrival, GenerateEmptyWindow)
{
    PoissonArrivals p(1000.0);
    Rng rng(6);
    EXPECT_TRUE(p.generate(rng, 0, 0).empty());
}

TEST(Arrival, OnOffDutyCycleControlsRate)
{
    // Same burst rate, different OFF lengths: longer OFF = lower rate.
    OnOffArrivals busy(100.0, kSec, kSec);
    OnOffArrivals sparse(100.0, kSec, 9 * kSec);
    EXPECT_NEAR(busy.meanRate(), 50.0, 1e-9);
    EXPECT_NEAR(sparse.meanRate(), 10.0, 1e-9);
}

TEST(Arrival, MmppSilentStateProducesNoArrivals)
{
    // State 1 is silent; all gaps must still be finite and the rate
    // equals rate0 weighted by state-0 occupancy.
    MmppArrivals m(100.0, 0.0, kSec, kSec);
    EXPECT_NEAR(m.meanRate(), 50.0, 1e-9);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(m.nextGap(rng), 0);
}

TEST(Arrival, ResetRestoresInitialState)
{
    OnOffArrivals a(200.0, kSec, kSec);
    Rng r1(9), r2(9);
    std::vector<Tick> first, second;
    for (int i = 0; i < 100; ++i)
        first.push_back(a.nextGap(r1));
    a.reset();
    for (int i = 0; i < 100; ++i)
        second.push_back(a.nextGap(r2));
    EXPECT_EQ(first, second);
}

TEST(ArrivalDeathTest, InvalidParameters)
{
    EXPECT_DEATH(PoissonArrivals(0.0), "positive");
    EXPECT_DEATH(OnOffArrivals(10.0, 0, kSec), "positive");
    EXPECT_DEATH(ParetoRenewal(1.0, 10.0), "shape > 1");
    EXPECT_DEATH(MmppArrivals(0.0, 0.0, kSec, kSec),
                 "at least one active state");
}

} // anonymous namespace
} // namespace synth
} // namespace dlw
