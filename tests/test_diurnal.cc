/**
 * @file
 * Unit tests for synth/diurnal.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "synth/diurnal.hh"

namespace dlw
{
namespace synth
{
namespace
{

DiurnalShape
plainShape()
{
    DiurnalShape s;
    s.night_level = 0.2;
    s.day_level = 1.0;
    s.peak_hour = 14.0;
    s.weekend_level = 0.5;
    s.batch_level = 0.0;
    return s;
}

TEST(Diurnal, PeakAtDeclaredHour)
{
    RateFunction f = plainShape().build();
    const Tick peak = 14 * kHour;
    EXPECT_NEAR(f(peak), 1.0, 1e-9);
    // Trough 12 hours away.
    EXPECT_NEAR(f(2 * kHour), 0.2, 1e-9);
    // Intermediate values strictly between.
    const double mid = f(8 * kHour);
    EXPECT_GT(mid, 0.2);
    EXPECT_LT(mid, 1.0);
}

TEST(Diurnal, WeekendDamped)
{
    RateFunction f = plainShape().build();
    const Tick weekday_peak = 14 * kHour;           // day 0
    const Tick saturday_peak = 5 * kDay + 14 * kHour; // day 5
    EXPECT_NEAR(f(saturday_peak), 0.5 * f(weekday_peak), 1e-9);
}

TEST(Diurnal, WeeklyPeriodicity)
{
    RateFunction f = plainShape().build();
    for (int h = 0; h < 48; h += 5) {
        const Tick t = static_cast<Tick>(h) * kHour;
        EXPECT_NEAR(f(t), f(t + kWeek), 1e-9) << "hour " << h;
    }
}

TEST(Diurnal, BatchWindowOverlaysTrough)
{
    DiurnalShape s = plainShape();
    s.batch_level = 0.7;
    s.batch_start_hour = 1.0;
    s.batch_hours = 2.0;
    RateFunction f = s.build();
    // Inside the window the level is lifted to 0.7.
    EXPECT_NEAR(f(90 * kMinute), 0.7, 1e-9);
    // Outside it falls back to the cosine trough.
    EXPECT_LT(f(4 * kHour), 0.5);
}

TEST(Diurnal, MeanRateOverConstantFunction)
{
    RateFunction flat = [](Tick) { return 0.42; };
    EXPECT_NEAR(meanRateOver(flat, 0, kHour), 0.42, 1e-12);
}

TEST(Diurnal, MeanRateOverTracksAverage)
{
    RateFunction f = plainShape().build();
    // Average over a full day must lie between the extremes.
    const double avg = meanRateOver(f, 0, kDay);
    EXPECT_GT(avg, 0.2);
    EXPECT_LT(avg, 1.0);
    EXPECT_NEAR(avg, 0.6, 0.05); // mid of the raised cosine
}

TEST(Nhpp, RateTracksModulation)
{
    DiurnalShape s = plainShape();
    RateFunction f = s.build();
    NhppArrivals gen(100.0, f, 1.0);
    Rng rng(1);
    // Generate one business day; count peak and trough hours.
    auto arrivals = gen.generate(rng, 0, kDay);
    std::vector<int> per_hour(24, 0);
    for (Tick t : arrivals)
        ++per_hour[static_cast<std::size_t>(t / kHour) % 24];
    // Peak hour ~ 100/s * 3600 = 360000 * level 1.0... sampled, so
    // compare ratios instead of absolutes.
    EXPECT_GT(per_hour[14], per_hour[2] * 3);
    const double total_rate = static_cast<double>(arrivals.size()) /
                              ticksToSeconds(kDay);
    EXPECT_NEAR(total_rate, 100.0 * 0.6, 8.0);
}

TEST(Nhpp, EmptyWindow)
{
    NhppArrivals gen(10.0, [](Tick) { return 1.0; }, 1.0);
    Rng rng(2);
    EXPECT_TRUE(gen.generate(rng, 0, 0).empty());
}

TEST(Nhpp, ZeroRateRegionsSilent)
{
    // Rate is zero in the second half of the window.
    RateFunction f = [](Tick t) { return t < kSec ? 1.0 : 0.0; };
    NhppArrivals gen(1000.0, f, 1.0);
    Rng rng(3);
    auto arrivals = gen.generate(rng, 0, 2 * kSec);
    ASSERT_FALSE(arrivals.empty());
    for (Tick t : arrivals)
        EXPECT_LT(t, kSec);
}

TEST(NhppDeathTest, SupremumViolation)
{
    RateFunction f = [](Tick) { return 2.0; };
    NhppArrivals gen(10.0, f, 1.0);
    Rng rng(4);
    EXPECT_DEATH(gen.generate(rng, 0, kSec),
                 "exceeded its declared supremum");
}

TEST(DiurnalDeathTest, InvalidShape)
{
    DiurnalShape s = plainShape();
    s.night_level = 2.0; // above day level
    EXPECT_DEATH(s.build(), "inverted");
}

} // anonymous namespace
} // namespace synth
} // namespace dlw
