/**
 * @file
 * The Hour trace: per-hour activity counters over weeks or months.
 *
 * This models what drive firmware logs over long deployments: for
 * every hour, the number of read and write commands, the blocks
 * moved in each direction, and the cumulative busy time.  It is the
 * middle granularity of the paper's three data sets and the basis of
 * the diurnal-pattern and busy-hour analyses.
 */

#ifndef DLW_TRACE_HOURTRACE_HH
#define DLW_TRACE_HOURTRACE_HH

#include <string>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "stats/timeseries.hh"

namespace dlw
{
namespace trace
{

/**
 * Counters for one hour of drive activity.
 */
struct HourBucket
{
    /** Read commands completed in the hour. */
    std::uint64_t reads = 0;
    /** Write commands completed in the hour. */
    std::uint64_t writes = 0;
    /** Blocks read in the hour. */
    std::uint64_t read_blocks = 0;
    /** Blocks written in the hour. */
    std::uint64_t write_blocks = 0;
    /** Ticks the drive mechanism was busy during the hour. */
    Tick busy = 0;

    /** Total commands. */
    std::uint64_t total() const { return reads + writes; }

    /** Total blocks. */
    std::uint64_t totalBlocks() const { return read_blocks + write_blocks; }

    /** Busy fraction of the hour in [0, 1]. */
    double
    utilization() const
    {
        return static_cast<double>(busy) / static_cast<double>(kHour);
    }

    /** Fraction of commands that are reads (0 when idle). */
    double
    readFraction() const
    {
        const std::uint64_t t = total();
        return t ? static_cast<double>(reads) / static_cast<double>(t)
                 : 0.0;
    }

    /** Element-wise accumulate. */
    void
    operator+=(const HourBucket &o)
    {
        reads += o.reads;
        writes += o.writes;
        read_blocks += o.read_blocks;
        write_blocks += o.write_blocks;
        busy += o.busy;
    }

    bool
    operator==(const HourBucket &o) const
    {
        return reads == o.reads && writes == o.writes &&
               read_blocks == o.read_blocks &&
               write_blocks == o.write_blocks && busy == o.busy;
    }
};

/**
 * Hour-granularity activity log for one drive.
 */
class HourTrace
{
  public:
    HourTrace() = default;

    /**
     * @param drive_id Identifier of the drive.
     * @param start    Tick of the left edge of hour 0.
     */
    HourTrace(std::string drive_id, Tick start);

    /** Identifier of the drive. */
    const std::string &driveId() const { return drive_id_; }

    /** Set the drive identifier. */
    void setDriveId(std::string id) { drive_id_ = std::move(id); }

    /** Tick of hour 0's left edge. */
    Tick start() const { return start_; }

    /** Number of logged hours. */
    std::size_t hours() const { return buckets_.size(); }

    /** True when no hour has been logged. */
    bool empty() const { return buckets_.empty(); }

    /** Bucket for hour h (bounds-checked, const). */
    const HourBucket &at(std::size_t h) const;

    /** Bucket for hour h, growing the log as needed. */
    HourBucket &bucketFor(std::size_t h);

    /** Bucket containing absolute tick t, growing as needed. */
    HourBucket &bucketAt(Tick t);

    /** Append one bucket. */
    void append(const HourBucket &b) { buckets_.push_back(b); }

    /** All buckets. */
    const std::vector<HourBucket> &buckets() const { return buckets_; }

    /**
     * Validate internal consistency (busy time within the hour,
     * blocks consistent with command counts).
     *
     * @return Success, or a CorruptData status naming the first
     *         violation.
     */
    Status checkValid() const;

    /**
     * Boolean wrapper around checkValid().
     *
     * @param fail_hard Throw StatusError on violation instead of
     *                  returning false.
     */
    bool validate(bool fail_hard = false) const;

    /** Total commands over the whole log. */
    std::uint64_t totalRequests() const;

    /** Total blocks moved over the whole log. */
    std::uint64_t totalBlocks() const;

    /** Mean utilization across hours (0 when empty). */
    double meanUtilization() const;

    /** Fraction of hours with zero commands. */
    double idleHourFraction() const;

    /**
     * Fraction of hours with utilization at or above the threshold.
     *
     * @param threshold Utilization level counting as "busy".
     */
    double busyHourFraction(double threshold) const;

    /**
     * Longest run of consecutive hours at or above a utilization
     * threshold — the paper's "fully utilizing the available disk
     * bandwidth for hours at a time" metric.
     */
    std::size_t longestBusyRun(double threshold) const;

    /** Requests-per-hour as a BinnedSeries (for burstiness math). */
    stats::BinnedSeries requestSeries() const;

    /** Utilization-per-hour as a BinnedSeries in [0, 1]. */
    stats::BinnedSeries utilizationSeries() const;

    /** Read-fraction-per-hour as a BinnedSeries. */
    stats::BinnedSeries readFractionSeries() const;

    /**
     * Average bucket over an hour-of-week grid (168 slots), the raw
     * material of the diurnal/weekly pattern figure.
     *
     * @return 168 mean-request-count values, slot 0 = hour 0 of the
     *         log's first day.
     */
    std::vector<double> hourOfWeekProfile() const;

  private:
    std::string drive_id_;
    Tick start_ = 0;
    std::vector<HourBucket> buckets_;
};

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_HOURTRACE_HH
