/**
 * @file
 * P-square (P²) streaming quantile estimator.
 *
 * Tracks a single quantile in O(1) memory without retaining samples
 * (Jain & Chlamtac, CACM 1985).  Lifetime traces span months of
 * activity, so the family analysis uses P² markers where an exact
 * Ecdf would be wasteful.
 */

#ifndef DLW_STATS_QUANTILE_HH
#define DLW_STATS_QUANTILE_HH

#include <array>
#include <cstdint>

namespace dlw
{
namespace stats
{

/**
 * Single-quantile P² estimator.
 */
class P2Quantile
{
  public:
    /** @param q Target quantile in (0, 1). */
    explicit P2Quantile(double q);

    /** Offer one observation. */
    void add(double x);

    /** Number of observations offered so far. */
    std::uint64_t count() const { return n_; }

    /**
     * Current estimate of the target quantile.
     *
     * Exact while fewer than five samples have been seen.
     */
    double value() const;

  private:
    double parabolic(int i, double d) const;
    double linear(int i, double d) const;

    double q_;
    std::uint64_t n_ = 0;
    std::array<double, 5> heights_{};
    std::array<double, 5> positions_{};
    std::array<double, 5> desired_{};
    std::array<double, 5> increments_{};
};

} // namespace stats
} // namespace dlw

#endif // DLW_STATS_QUANTILE_HH
