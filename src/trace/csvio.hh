/**
 * @file
 * CSV readers and writers for the three trace granularities.
 *
 * The CSV forms are the human-auditable interchange format; each file
 * starts with a `# dlw-<kind>-v1` header line followed by a column
 * header.  The Status-returning readers apply the caller's
 * RecordPolicy to corrupt records (see trace/ingest.hh) and fill an
 * IngestStats; header corruption always fails.  The legacy
 * value-returning overloads keep the strict posture: they read under
 * RecordPolicy::kAbort and throw StatusError on any corruption.
 */

#ifndef DLW_TRACE_CSVIO_HH
#define DLW_TRACE_CSVIO_HH

#include <iosfwd>
#include <string>

#include "common/status.hh"
#include "trace/hourtrace.hh"
#include "trace/ingest.hh"
#include "trace/lifetime.hh"
#include "trace/mstrace.hh"

namespace dlw
{
namespace trace
{

/** Write a ms trace as CSV to a stream (throws StatusError). */
void writeMsCsv(std::ostream &os, const MsTrace &trace);

/** Write a ms trace as CSV to a file path (throws StatusError). */
void writeMsCsv(const std::string &path, const MsTrace &trace);

/**
 * Read a ms trace from a CSV stream.
 *
 * @param is    Input stream positioned at the format header.
 * @param opts  Corrupt-record policy and limits.
 * @param stats Filled with ingestion counters when non-null (also on
 *              failure, up to the failing record).
 * @return The trace, or the first unrecovered corruption.
 */
StatusOr<MsTrace> readMsCsv(std::istream &is, const IngestOptions &opts,
                            IngestStats *stats = nullptr);

/** Read a ms trace from a CSV file under the given policy. */
StatusOr<MsTrace> readMsCsv(const std::string &path,
                            const IngestOptions &opts,
                            IngestStats *stats = nullptr);

/** Strict legacy read (kAbort; throws StatusError on corruption). */
MsTrace readMsCsv(std::istream &is);

/** Strict legacy read from a file (throws StatusError). */
MsTrace readMsCsv(const std::string &path);

/** Write an hour trace as CSV to a stream (throws StatusError). */
void writeHourCsv(std::ostream &os, const HourTrace &trace);

/** Write an hour trace as CSV to a file path (throws StatusError). */
void writeHourCsv(const std::string &path, const HourTrace &trace);

/** Read an hour trace from a CSV stream under the given policy. */
StatusOr<HourTrace> readHourCsv(std::istream &is,
                                const IngestOptions &opts,
                                IngestStats *stats = nullptr);

/** Read an hour trace from a CSV file under the given policy. */
StatusOr<HourTrace> readHourCsv(const std::string &path,
                                const IngestOptions &opts,
                                IngestStats *stats = nullptr);

/** Strict legacy read (throws StatusError). */
HourTrace readHourCsv(std::istream &is);

/** Strict legacy read from a file (throws StatusError). */
HourTrace readHourCsv(const std::string &path);

/** Write a lifetime trace as CSV to a stream (throws StatusError). */
void writeLifetimeCsv(std::ostream &os, const LifetimeTrace &trace);

/** Write a lifetime trace as CSV to a file (throws StatusError). */
void writeLifetimeCsv(const std::string &path,
                      const LifetimeTrace &trace);

/** Read a lifetime trace from a CSV stream under the given policy. */
StatusOr<LifetimeTrace> readLifetimeCsv(std::istream &is,
                                        const IngestOptions &opts,
                                        IngestStats *stats = nullptr);

/** Read a lifetime trace from a CSV file under the given policy. */
StatusOr<LifetimeTrace> readLifetimeCsv(const std::string &path,
                                        const IngestOptions &opts,
                                        IngestStats *stats = nullptr);

/** Strict legacy read (throws StatusError). */
LifetimeTrace readLifetimeCsv(std::istream &is);

/** Strict legacy read from a file (throws StatusError). */
LifetimeTrace readLifetimeCsv(const std::string &path);

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_CSVIO_HH
