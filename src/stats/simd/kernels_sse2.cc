/**
 * @file
 * SSE2 kernels (x86-64 baseline, 2 doubles / 2 ticks per vector).
 *
 * Every loop mirrors the scalar reference tree from kernels.hh with
 * element-wise IEEE operations (sub/mul/div/min/max/truncate are all
 * correctly rounded per lane, and nothing here emits FMA), so the
 * results are bit-identical to kScalarOps by construction.  SSE2
 * has no 64-bit integer compare, so tick comparisons ride on the
 * sign bit of a 64-bit subtraction (valid while ticks stay well
 * inside the int64 range, which nanosecond timestamps do), and the
 * int64 -> double conversion uses the exact split identity
 * x == (hi(x) * 2^32 - 2^52) + (2^52 + lo(x)) with one final
 * rounding — the same single rounding static_cast performs.
 */

#include "stats/simd/kernels.hh"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace dlw
{
namespace stats
{
namespace simd
{
namespace detail
{
namespace
{

/** Exact int64 -> double conversion, 2 lanes. */
inline __m128d
cvtI64F64(__m128i v)
{
    const __m128i magic_lo =
        _mm_set1_epi64x(0x4330000000000000LL); // 2^52
    const __m128i magic_hi =
        _mm_set1_epi64x(0x4530000080000000LL); // 2^84 + 2^63 bias
    const __m128d magic_all = _mm_castsi128_pd(
        _mm_set1_epi64x(0x4530000080100000LL)); // 2^84 + 2^63 + 2^52
    const __m128i low_mask = _mm_set1_epi64x(0x00000000FFFFFFFFLL);

    __m128i v_lo = _mm_or_si128(_mm_and_si128(v, low_mask), magic_lo);
    __m128i v_hi = _mm_xor_si128(_mm_srli_epi64(v, 32), magic_hi);
    __m128d hi_d = _mm_sub_pd(_mm_castsi128_pd(v_hi), magic_all);
    return _mm_add_pd(hi_d, _mm_castsi128_pd(v_lo));
}

/** Bit k set when 64-bit lane k of (a - b) is negative, i.e. a < b. */
inline int
ltMask64(__m128i a, __m128i b)
{
    return _mm_movemask_pd(_mm_castsi128_pd(_mm_sub_epi64(a, b)));
}

void
binLinearSse2(const double *x, std::size_t n, double lo, double hi,
              double inv_width, std::int32_t bins, std::int32_t *idx)
{
    const __m128d vlo = _mm_set1_pd(lo);
    const __m128d vhi = _mm_set1_pd(hi);
    const __m128d vw = _mm_set1_pd(inv_width);
    const __m128i vbm1 = _mm_set1_epi32(bins - 1);

    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d vx = _mm_loadu_pd(x + i);
        const int under = _mm_movemask_pd(_mm_cmplt_pd(vx, vlo));
        const int over = _mm_movemask_pd(_mm_cmpge_pd(vx, vhi));
        const __m128d q = _mm_mul_pd(_mm_sub_pd(vx, vlo), vw);
        __m128i bi = _mm_cvttpd_epi32(q);
        const __m128i too_big = _mm_cmpgt_epi32(bi, vbm1);
        bi = _mm_or_si128(_mm_and_si128(too_big, vbm1),
                          _mm_andnot_si128(too_big, bi));
        _mm_storel_epi64(reinterpret_cast<__m128i *>(idx + i), bi);
        if (under | over) {
            for (int k = 0; k < 2; ++k) {
                if (under & (1 << k))
                    idx[i + k] = kBinUnderflow;
                else if (over & (1 << k))
                    idx[i + k] = kBinOverflow;
            }
        }
    }
    for (; i < n; ++i)
        idx[i] = binLinearOne(x[i], lo, hi, inv_width, bins);
}

/**
 * Log binning is dominated by the scalar libm log10 call (which every
 * ISA must keep for bit-reproducibility), and at 2 lanes the masked
 * per-lane conditional call costs more than it saves: the vectorized
 * variant measured ~0.6x of the plain scalar loop on this kernel's
 * microbenchmark.  The SSE2 table therefore composes the scalar
 * reference here; AVX2 amortizes the classify/divide over 4 lanes and
 * keeps its vector version.
 */
void
binLogSse2(const double *x, std::size_t n, double lo, double hi,
           double log_lo, double inv_log_width, std::int32_t bins,
           std::int32_t *idx)
{
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = binLogOne(x[i], lo, hi, log_lo, inv_log_width, bins);
}

/**
 * Shared gallop: find the length of the run starting at t[i] whose
 * ticks all fall inside [bin_lo, bin_hi).  Returns one past the run.
 */
inline std::size_t
runEnd(const Tick *t, std::size_t i, std::size_t n, Tick bin_lo,
       Tick bin_hi)
{
    const __m128i vlo = _mm_set1_epi64x(bin_lo);
    const __m128i vhi = _mm_set1_epi64x(bin_hi);
    std::size_t j = i + 1;
    for (; j + 2 <= n; j += 2) {
        const __m128i vt = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(t + j));
        const int below = ltMask64(vt, vlo);
        const int in_run = ~below & ltMask64(vt, vhi) & 0x3;
        if (in_run != 0x3)
            return j + static_cast<std::size_t>(
                           __builtin_ctz(~in_run & 0x3));
    }
    for (; j < n; ++j) {
        if (t[j] < bin_lo || t[j] >= bin_hi)
            break;
    }
    return j;
}

std::size_t
countSortedSse2(const Tick *t, std::size_t n, Tick start, Tick width,
                double *bins, std::size_t nbins)
{
    std::size_t i = 0;
    while (i < n) {
        if (t[i] < start)
            return i;
        const auto idx =
            static_cast<std::size_t>((t[i] - start) / width);
        if (idx >= nbins)
            return i;
        const Tick bin_lo = start + static_cast<Tick>(idx) * width;
        const std::size_t j = runEnd(t, i, n, bin_lo, bin_lo + width);
        bins[idx] += static_cast<double>(j - i);
        i = j;
    }
    return n;
}

/** Matching flags in [i, j), 16 bytes at a time. */
inline std::uint64_t
countEqRange(const std::uint8_t *flags, std::size_t i, std::size_t j,
             __m128i vwant, std::uint8_t want)
{
    std::uint64_t c = 0;
    for (; i + 16 <= j; i += 16) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(flags + i));
        c += static_cast<unsigned>(__builtin_popcount(
            _mm_movemask_epi8(_mm_cmpeq_epi8(v, vwant))));
    }
    for (; i < j; ++i)
        c += flags[i] == want ? 1 : 0;
    return c;
}

std::size_t
countSortedIfSse2(const Tick *t, const std::uint8_t *flags,
                  std::uint8_t want, std::size_t n, Tick start,
                  Tick width, double *bins, std::size_t nbins)
{
    const __m128i vwant = _mm_set1_epi8(static_cast<char>(want));
    std::size_t i = 0;
    while (i < n) {
        if (t[i] < start)
            return i;
        const auto idx =
            static_cast<std::size_t>((t[i] - start) / width);
        if (idx >= nbins)
            return i;
        const Tick bin_lo = start + static_cast<Tick>(idx) * width;
        const std::size_t j = runEnd(t, i, n, bin_lo, bin_lo + width);
        const std::uint64_t c = countEqRange(flags, i, j, vwant, want);
        if (c)
            bins[idx] += static_cast<double>(c);
        i = j;
    }
    return n;
}

void
gapsI64Sse2(const Tick *t, std::size_t n, Tick prev, double *out)
{
    if (n == 0)
        return;
    out[0] = static_cast<double>(t[0] - prev);
    std::size_t i = 1;
    for (; i + 2 <= n; i += 2) {
        const __m128i cur = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(t + i));
        const __m128i prv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(t + i - 1));
        _mm_storeu_pd(out + i, cvtI64F64(_mm_sub_epi64(cur, prv)));
    }
    for (; i < n; ++i)
        out[i] = static_cast<double>(t[i] - t[i - 1]);
}

void
welfordAddSse2(SummaryLanes &s, const double *x, std::size_t n)
{
    std::size_t i = 0;
    std::uint32_t lane = s.next;
    // Peel until the cursor sits on lane 0, so vector iterations map
    // elements i..i+3 onto lanes 0..3 exactly.
    while (lane != 0 && i < n) {
        welfordOne(s, lane, x[i]);
        lane = (lane + 1) % kSummaryLanes;
        ++i;
    }

    const __m128d one = _mm_set1_pd(1.0);
    const __m128d two = _mm_set1_pd(2.0);
    const __m128d three = _mm_set1_pd(3.0);
    const __m128d four = _mm_set1_pd(4.0);
    const __m128d six = _mm_set1_pd(6.0);

    for (; i + kSummaryLanes <= n; i += kSummaryLanes) {
        for (int h = 0; h < 2; ++h) { // lane pairs {0,1} and {2,3}
            const std::size_t o = static_cast<std::size_t>(2 * h);
            const __m128d vx = _mm_loadu_pd(x + i + o);
            const __m128d n1 = _mm_load_pd(s.n + o);
            const __m128d nn = _mm_add_pd(n1, one);
            __m128d mean = _mm_load_pd(s.mean + o);
            __m128d m2 = _mm_load_pd(s.m2 + o);
            __m128d m3 = _mm_load_pd(s.m3 + o);
            __m128d m4 = _mm_load_pd(s.m4 + o);

            const __m128d delta = _mm_sub_pd(vx, mean);
            const __m128d delta_n = _mm_div_pd(delta, nn);
            const __m128d delta_n2 = _mm_mul_pd(delta_n, delta_n);
            const __m128d term1 =
                _mm_mul_pd(_mm_mul_pd(delta, delta_n), n1);

            mean = _mm_add_pd(mean, delta_n);
            // K = nn*nn - 3*nn + 3, associated like the scalar tree.
            const __m128d k4 = _mm_add_pd(
                _mm_sub_pd(_mm_mul_pd(nn, nn), _mm_mul_pd(three, nn)),
                three);
            const __m128d a4 =
                _mm_mul_pd(_mm_mul_pd(term1, delta_n2), k4);
            const __m128d b4 =
                _mm_mul_pd(_mm_mul_pd(six, delta_n2), m2);
            const __m128d c4 =
                _mm_mul_pd(_mm_mul_pd(four, delta_n), m3);
            m4 = _mm_add_pd(m4, _mm_sub_pd(_mm_add_pd(a4, b4), c4));
            const __m128d a3 = _mm_mul_pd(_mm_mul_pd(term1, delta_n),
                                          _mm_sub_pd(nn, two));
            const __m128d c3 =
                _mm_mul_pd(_mm_mul_pd(three, delta_n), m2);
            m3 = _mm_add_pd(m3, _mm_sub_pd(a3, c3));
            m2 = _mm_add_pd(m2, term1);

            _mm_store_pd(s.n + o, nn);
            _mm_store_pd(s.mean + o, mean);
            _mm_store_pd(s.m2 + o, m2);
            _mm_store_pd(s.m3 + o, m3);
            _mm_store_pd(s.m4 + o, m4);
            _mm_store_pd(s.mn + o,
                         _mm_min_pd(vx, _mm_load_pd(s.mn + o)));
            _mm_store_pd(s.mx + o,
                         _mm_max_pd(vx, _mm_load_pd(s.mx + o)));
        }
    }

    for (; i < n; ++i) {
        welfordOne(s, lane, x[i]);
        lane = (lane + 1) % kSummaryLanes;
    }
    s.next = lane;
}

std::uint64_t
countEqU8Sse2(const std::uint8_t *v, std::size_t n, std::uint8_t want)
{
    return countEqRange(v, 0, n,
                        _mm_set1_epi8(static_cast<char>(want)), want);
}

std::uint64_t
sumU32Sse2(const std::uint32_t *v, std::size_t n)
{
    __m128i acc = _mm_setzero_si128();
    const __m128i zero = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i q = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + i));
        acc = _mm_add_epi64(acc, _mm_unpacklo_epi32(q, zero));
        acc = _mm_add_epi64(acc, _mm_unpackhi_epi32(q, zero));
    }
    alignas(16) std::uint64_t parts[2];
    _mm_store_si128(reinterpret_cast<__m128i *>(parts), acc);
    std::uint64_t s = parts[0] + parts[1];
    for (; i < n; ++i)
        s += v[i];
    return s;
}

} // anonymous namespace

const KernelOps kSse2Ops = {
    binLinearSse2,    binLogSse2,  countSortedSse2,
    countSortedIfSse2, gapsI64Sse2, welfordAddSse2,
    countEqU8Sse2,    sumU32Sse2,
};

} // namespace detail
} // namespace simd
} // namespace stats
} // namespace dlw

#endif // defined(__SSE2__)
