/**
 * @file
 * Tests for the synth/family population generator.
 */

#include <gtest/gtest.h>

#include <map>

#include "synth/family.hh"
#include "trace/aggregate.hh"

namespace dlw
{
namespace synth
{
namespace
{

FamilyConfig
config(std::uint64_t seed = 42)
{
    FamilyConfig c;
    c.family = "TEST-FAM";
    c.seed = seed;
    return c;
}

TEST(Family, ProfilesDeterministicPerIndex)
{
    FamilyModel m1(config()), m2(config());
    for (std::size_t i = 0; i < 10; ++i) {
        DriveProfile a = m1.sampleProfile(i);
        DriveProfile b = m2.sampleProfile(i);
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.cls, b.cls);
        EXPECT_DOUBLE_EQ(a.base_rate, b.base_rate);
        EXPECT_DOUBLE_EQ(a.read_fraction, b.read_fraction);
    }
}

TEST(Family, SeedChangesPopulation)
{
    FamilyModel m1(config(1)), m2(config(2));
    int differing = 0;
    for (std::size_t i = 0; i < 20; ++i) {
        if (m1.sampleProfile(i).base_rate !=
            m2.sampleProfile(i).base_rate)
            ++differing;
    }
    EXPECT_GT(differing, 15);
}

TEST(Family, ClassMixtureApproximatesWeights)
{
    FamilyModel m(config());
    std::map<DriveClass, int> counts;
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        ++counts[m.sampleProfile(static_cast<std::size_t>(i)).cls];
    // Weights: 0.15/0.30/0.35/0.14/0.06.
    EXPECT_NEAR(static_cast<double>(counts[DriveClass::Archival]) / n,
                0.15, 0.03);
    EXPECT_NEAR(static_cast<double>(counts[DriveClass::Moderate]) / n,
                0.35, 0.04);
    EXPECT_NEAR(static_cast<double>(counts[DriveClass::Streamer]) / n,
                0.06, 0.02);
}

TEST(Family, HourTraceIsValidAndDiurnal)
{
    FamilyModel m(config());
    DriveProfile p = m.sampleProfile(3);
    trace::HourTrace t = m.generateHourTrace(p, 24 * 14);
    EXPECT_EQ(t.hours(), 24u * 14u);
    EXPECT_TRUE(t.validate(true));
    EXPECT_GT(t.totalRequests(), 0u);
}

TEST(Family, HourTraceDeterministic)
{
    FamilyModel m(config());
    DriveProfile p = m.sampleProfile(5);
    trace::HourTrace a = m.generateHourTrace(p, 100);
    trace::HourTrace b = m.generateHourTrace(p, 100);
    for (std::size_t h = 0; h < 100; ++h)
        EXPECT_TRUE(a.at(h) == b.at(h)) << "hour " << h;
}

TEST(Family, StreamersSaturateForHours)
{
    FamilyModel m(config());
    // Find streamer profiles and confirm at least one long
    // saturated run over a month.
    std::size_t with_runs = 0, streamers = 0;
    for (std::size_t i = 0; i < 200 && streamers < 8; ++i) {
        DriveProfile p = m.sampleProfile(i);
        if (p.cls != DriveClass::Streamer)
            continue;
        ++streamers;
        trace::HourTrace t = m.generateHourTrace(p, 24 * 30);
        if (t.longestBusyRun(0.9) >= 3)
            ++with_runs;
    }
    ASSERT_GT(streamers, 0u);
    EXPECT_GT(with_runs, 0u);
}

TEST(Family, NonStreamersRarelySaturate)
{
    FamilyModel m(config());
    std::size_t checked = 0;
    for (std::size_t i = 0; i < 100 && checked < 10; ++i) {
        DriveProfile p = m.sampleProfile(i);
        if (p.cls != DriveClass::Light &&
            p.cls != DriveClass::Archival)
            continue;
        ++checked;
        trace::HourTrace t = m.generateHourTrace(p, 24 * 14);
        EXPECT_LT(t.busyHourFraction(0.9), 0.05) << p.id;
    }
    EXPECT_GT(checked, 0u);
}

TEST(Family, LifetimeMatchesStreamedHourProcess)
{
    FamilyModel m(config());
    DriveProfile p = m.sampleProfile(7);
    // Lifetime generation must equal aggregating the hour trace
    // generated from the same profile (same rng seeding).
    const std::size_t hours = 500;
    trace::HourTrace ht = m.generateHourTrace(p, hours);
    trace::LifetimeRecord direct = m.generateLifetime(p, hours);
    trace::LifetimeRecord via = trace::hourToLifetime(ht, 0.9);
    via.drive_id = direct.drive_id;
    EXPECT_EQ(direct.reads, via.reads);
    EXPECT_EQ(direct.writes, via.writes);
    EXPECT_EQ(direct.read_blocks, via.read_blocks);
    EXPECT_EQ(direct.busy, via.busy);
    EXPECT_EQ(direct.saturated_hours, via.saturated_hours);
    EXPECT_EQ(direct.longest_saturated_run,
              via.longest_saturated_run);
}

TEST(Family, LifetimeTracePopulation)
{
    FamilyModel m(config());
    trace::LifetimeTrace lt = m.generateLifetimeTrace(64, 1000, 2000);
    EXPECT_EQ(lt.size(), 64u);
    EXPECT_EQ(lt.family(), "TEST-FAM");
    EXPECT_TRUE(lt.validate(true));
    for (const trace::LifetimeRecord &r : lt.records()) {
        EXPECT_GE(r.power_on, 1000 * kHour);
        EXPECT_LE(r.power_on, 2000 * kHour);
    }
}

TEST(Family, PopulationShowsVariability)
{
    FamilyModel m(config());
    trace::LifetimeTrace lt = m.generateLifetimeTrace(128, 2000, 2000);
    auto us = lt.utilizations();
    double lo = 1.0, hi = 0.0;
    for (double u : us) {
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    // Heterogeneous family: utilization spread must be wide.
    EXPECT_LT(lo, 0.05);
    EXPECT_GT(hi, 0.2);
}

TEST(Family, ClassNames)
{
    EXPECT_STREQ(driveClassName(DriveClass::Archival), "archival");
    EXPECT_STREQ(driveClassName(DriveClass::Streamer), "streamer");
}

TEST(FamilyDeathTest, BadConfig)
{
    FamilyConfig c;
    c.class_weights = {1.0, 2.0};
    EXPECT_DEATH(FamilyModel{c}, "five class weights");
}

} // anonymous namespace
} // namespace synth
} // namespace dlw
