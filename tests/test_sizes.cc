/**
 * @file
 * Unit tests for synth/sizes.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "synth/sizes.hh"

namespace dlw
{
namespace synth
{
namespace
{

TEST(FixedSize, AlwaysSame)
{
    FixedSize s(64);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(s.nextBlocks(rng), 64u);
    EXPECT_DOUBLE_EQ(s.meanBlocks(), 64.0);
}

TEST(BimodalSize, MixFollowsProbability)
{
    BimodalSize s(8, 128, 0.75);
    Rng rng(2);
    int small = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        BlockCount b = s.nextBlocks(rng);
        ASSERT_TRUE(b == 8u || b == 128u);
        small += b == 8u ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(small) / n, 0.75, 0.01);
    EXPECT_DOUBLE_EQ(s.meanBlocks(), 0.75 * 8 + 0.25 * 128);
}

TEST(BimodalSize, DegenerateProbabilities)
{
    Rng rng(3);
    BimodalSize always_small(8, 128, 1.0);
    BimodalSize always_large(8, 128, 0.0);
    EXPECT_EQ(always_small.nextBlocks(rng), 8u);
    EXPECT_EQ(always_large.nextBlocks(rng), 128u);
}

TEST(LognormalSize, MedianAndCap)
{
    LognormalSize s(16, 1.0, 256);
    Rng rng(4);
    std::vector<BlockCount> xs;
    for (int i = 0; i < 100000; ++i) {
        BlockCount b = s.nextBlocks(rng);
        ASSERT_GE(b, 1u);
        ASSERT_LE(b, 256u);
        xs.push_back(b);
    }
    std::sort(xs.begin(), xs.end());
    EXPECT_NEAR(static_cast<double>(xs[xs.size() / 2]), 16.0, 1.0);
}

TEST(LognormalSize, MeanReflectsSigma)
{
    LognormalSize narrow(16, 0.1, 100000);
    LognormalSize wide(16, 1.5, 100000);
    EXPECT_GT(wide.meanBlocks(), narrow.meanBlocks());
}

TEST(SizesDeathTest, InvalidParameters)
{
    EXPECT_DEATH(FixedSize(0), ">= 1");
    EXPECT_DEATH(BimodalSize(10, 5, 0.5), "inverted");
    EXPECT_DEATH(BimodalSize(1, 2, 1.5), "out of range");
    EXPECT_DEATH(LognormalSize(16, 0.0, 100), "positive");
    EXPECT_DEATH(LognormalSize(16, 1.0, 8), "cap below median");
}

} // anonymous namespace
} // namespace synth
} // namespace dlw
