/**
 * @file
 * E17 (extension) — enterprise 15k vs nearline 7.2k under identical
 * workload.
 *
 * The paper studies one enterprise family; deployments mix drive
 * classes.  This experiment replays the same request streams on the
 * 15k enterprise model and the 7200 RPM nearline model, plus an
 * M/G/1 sanity row: the slower mechanism saturates at a lower
 * arrival rate and its response times blow up first.
 */

#include <iostream>

#include "benchutil.hh"
#include "core/queueing.hh"
#include "core/report.hh"

#include "obs/export.hh"

using namespace dlw;

int
main()
{
    obs::BenchReportGuard obs_guard("e17_drive_classes");
    std::cout << "E17: drive-class comparison at identical load\n\n";

    disk::DriveConfig ent = disk::DriveConfig::makeEnterprise();
    disk::DriveConfig near = disk::DriveConfig::makeNearline();
    // Use the smaller capacity for both streams so LBAs fit.
    const Lba cap = ent.geometry.capacityBlocks();

    core::Table t("enterprise 15k vs nearline 7.2k",
                  {"rate req/s", "drive", "util%", "mean resp ms",
                   "p95 resp ms", "rho (M/G/1)"});

    for (double rate : {30.0, 60.0, 90.0, 120.0}) {
        Rng rng(bench::kSeed + 17);
        synth::Workload w;
        w.setArrival(std::make_unique<synth::PoissonArrivals>(rate));
        w.setSize(std::make_unique<synth::FixedSize>(8));
        w.setSpatial(std::make_unique<synth::UniformSpatial>(cap));
        w.setMix(1.0);
        trace::MsTrace tr = w.generate(rng, "cls", 0, 5 * kMinute);

        for (bool nearline : {false, true}) {
            disk::DriveConfig cfg = nearline ? near : ent;
            cfg.cache.enabled = false;
            cfg.sched = disk::SchedPolicy::Fcfs;
            disk::ServiceLog log = disk::DiskDrive(cfg).service(tr);
            core::QueueingValidation v = core::validateMg1(tr, log);
            t.addRow({core::cell(rate),
                      nearline ? "nearline-7.2k" : "enterprise-15k",
                      core::cell(100.0 * log.utilization()),
                      core::cell(log.meanResponse() /
                                 static_cast<double>(kMsec)),
                      core::cell(static_cast<double>(
                                     log.responseQuantile(0.95)) /
                                 static_cast<double>(kMsec)),
                      core::cell(v.predicted.rho)});
        }
    }
    t.print(std::cout);

    std::cout << "\nShape check: the nearline drive's longer seeks "
                 "and slower spindle roughly double its service "
                 "time, so it crosses into queueing collapse "
                 "(rho -> 1) at roughly half the arrival rate of "
                 "the enterprise drive.\n";
    return 0;
}
