/**
 * @file
 * Fault-injection, corrupt-record-policy, and degraded-fleet tests.
 *
 * Covers the four legs of the failure model:
 *  - fault points: arming modes, spec parsing, zero disarmed effect;
 *  - ingestion policies: exact IngestStats per policy on crafted
 *    corrupt inputs, CSV and binary;
 *  - corrupt utility: deterministic mangling and the write ->
 *    corrupt -> ingest -> verify-recovery round trip;
 *  - fleet isolation: injected shard failures yield a degraded but
 *    byte-identical report at any thread count, and a transient
 *    (once) fault is healed by a retry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/fault.hh"
#include "common/rng.hh"
#include "fleet/pipeline.hh"
#include "synth/workload.hh"
#include "trace/binio.hh"
#include "trace/corrupt.hh"
#include "trace/csvio.hh"
#include "trace/spc.hh"

namespace dlw
{
namespace
{

using trace::IngestOptions;
using trace::IngestStats;
using trace::MsTrace;
using trace::RecordPolicy;

IngestOptions
withPolicy(RecordPolicy p)
{
    IngestOptions o;
    o.policy = p;
    return o;
}

// ---------------------------------------------------------------- fault

TEST(Fault, DisarmedNeverFires)
{
    fault::disarmAll();
    EXPECT_FALSE(fault::anyArmed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(FAULT_POINT("test.point"));
}

TEST(Fault, EveryNthFiresOnSchedule)
{
    fault::FaultSpec spec;
    spec.mode = fault::Mode::EveryNth;
    spec.n = 3;
    fault::ScopedFault f("test.nth", spec);
    int fires = 0;
    for (int i = 1; i <= 9; ++i) {
        if (FAULT_POINT("test.nth")) {
            ++fires;
            EXPECT_EQ(i % 3, 0) << "fired at evaluation " << i;
        }
    }
    EXPECT_EQ(fires, 3);
    EXPECT_EQ(fault::fireCount("test.nth"), 3u);
}

TEST(Fault, KeyModIsPureFunctionOfKey)
{
    fault::FaultSpec spec;
    spec.mode = fault::Mode::KeyMod;
    spec.n = 8;
    fault::ScopedFault f("test.mod", spec);
    // Evaluation order must not matter: probe keys backwards.
    for (std::uint64_t key = 63; key != static_cast<std::uint64_t>(-1);
         --key) {
        EXPECT_EQ(FAULT_POINT_KEYED("test.mod", key), key % 8 == 0)
            << "key " << key;
    }
    EXPECT_EQ(fault::fireCount("test.mod"), 8u);
}

TEST(Fault, OnceFiresExactlyOnce)
{
    fault::FaultSpec spec;
    spec.mode = fault::Mode::Once;
    fault::ScopedFault f("test.once", spec);
    EXPECT_TRUE(FAULT_POINT("test.once"));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(FAULT_POINT("test.once"));
}

TEST(Fault, ProbabilityIsSeededAndReproducible)
{
    fault::FaultSpec spec;
    spec.mode = fault::Mode::Probability;
    spec.p = 0.25;
    spec.seed = 7;

    std::vector<bool> first;
    {
        fault::ScopedFault f("test.p", spec);
        for (std::uint64_t k = 0; k < 400; ++k)
            first.push_back(FAULT_POINT_KEYED("test.p", k));
    }
    std::size_t fires = 0;
    {
        fault::ScopedFault f("test.p", spec);
        for (std::uint64_t k = 0; k < 400; ++k) {
            EXPECT_EQ(FAULT_POINT_KEYED("test.p", k), first[k]);
            fires += first[k];
        }
    }
    // ~100 expected; accept a generous window, but reject the
    // degenerate all-or-nothing outcomes.
    EXPECT_GT(fires, 40u);
    EXPECT_LT(fires, 180u);
}

TEST(Fault, SpecStringArmsSeveralPoints)
{
    Status s = fault::armFromSpec(
        "a.point:nth=3;b.point:mod=8;c.point:p=0.5,seed=9;d.point:once");
    ASSERT_TRUE(s.ok()) << s.toString();
    EXPECT_TRUE(fault::anyArmed());
    EXPECT_FALSE(FAULT_POINT("a.point"));
    EXPECT_FALSE(FAULT_POINT("a.point"));
    EXPECT_TRUE(FAULT_POINT("a.point"));
    EXPECT_TRUE(FAULT_POINT_KEYED("b.point", 16));
    EXPECT_FALSE(FAULT_POINT_KEYED("b.point", 17));
    EXPECT_TRUE(FAULT_POINT("d.point"));
    EXPECT_FALSE(FAULT_POINT("d.point"));
    fault::disarmAll();
    EXPECT_FALSE(fault::anyArmed());
}

TEST(Fault, BadSpecArmsNothing)
{
    fault::disarmAll();
    EXPECT_FALSE(fault::armFromSpec("a.point:nth=3;bogus").ok());
    EXPECT_FALSE(fault::armFromSpec("a.point:nope=1").ok());
    EXPECT_FALSE(fault::armFromSpec("a.point:nth=0").ok());
    // All-or-nothing: the valid clause before the bad one must not
    // have been armed.
    EXPECT_FALSE(fault::anyArmed());
}

// ------------------------------------------------------------- policies

/** A ms CSV with 4 good records and 2 corrupt ones in the middle. */
std::string
corruptMsCsv()
{
    return "# dlw-ms-v1,d,0,1000\n"
           "arrival_ns,lba,blocks,op\n"
           "10,100,8,R\n"
           "20,200,8,W\n"
           "30,300,0,R\n"   // zero blocks: clampable to 1
           "40,400,8,Q\n"   // bad op: never clampable
           "50,500,8,R\n"
           "60,600,8,W\n";
}

TEST(IngestPolicy, AbortStopsAtFirstCorruptRecord)
{
    std::stringstream ss(corruptMsCsv());
    IngestStats st;
    auto r = trace::readMsCsv(ss, withPolicy(RecordPolicy::kAbort),
                              &st);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
    EXPECT_EQ(st.records_read, 2u);
    EXPECT_EQ(st.errors, 1u);
    EXPECT_EQ(st.bytes_recovered, 0u);
}

TEST(IngestPolicy, SkipCountsAndRecovers)
{
    std::stringstream ss(corruptMsCsv());
    IngestStats st;
    auto r = trace::readMsCsv(
        ss, withPolicy(RecordPolicy::kSkipAndCount), &st);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value().size(), 4u);
    EXPECT_EQ(st.records_read, 4u);
    EXPECT_EQ(st.records_skipped, 2u);
    EXPECT_EQ(st.records_clamped, 0u);
    EXPECT_EQ(st.errors, 2u);
    // Exactly the two good records after the first corrupt one:
    // "50,500,8,R\n" and "60,600,8,W\n" are 11 bytes each.
    EXPECT_EQ(st.bytes_recovered, 22u);
    ASSERT_FALSE(st.error_samples.empty());
    EXPECT_NE(st.error_samples[0].find("zero-length request"),
              std::string::npos);
}

TEST(IngestPolicy, ClampRepairsWhatItCan)
{
    std::stringstream ss(corruptMsCsv());
    IngestStats st;
    auto r = trace::readMsCsv(
        ss, withPolicy(RecordPolicy::kBestEffortClamp), &st);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    // Zero-blocks row is clamped to 1 block; bad-op row is skipped.
    EXPECT_EQ(r.value().size(), 5u);
    EXPECT_EQ(st.records_read, 5u);
    EXPECT_EQ(st.records_skipped, 1u);
    EXPECT_EQ(st.records_clamped, 1u);
    EXPECT_EQ(st.errors, 2u);
    EXPECT_EQ(r.value().at(2).blocks, 1u);
}

TEST(IngestPolicy, BinaryTruncationKeepsPrefixUnderSkip)
{
    Rng rng(3);
    synth::Workload w = synth::Workload::makeOltp(1 << 20, 50.0);
    MsTrace a = w.generate(rng, "bin-drive", 0, 5 * kSec);
    ASSERT_GT(a.size(), 10u);

    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    trace::writeMsBinary(ss, a);
    const std::string data = ss.str();
    // Cut mid-record-area: drop the last 40% of the byte stream.
    std::stringstream cut(data.substr(0, (data.size() * 6) / 10),
                          std::ios::in | std::ios::binary);

    IngestStats st;
    auto r = trace::readMsBinary(
        cut, withPolicy(RecordPolicy::kSkipAndCount), &st);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_GT(r.value().size(), 0u);
    EXPECT_LT(r.value().size(), a.size());
    EXPECT_EQ(st.records_read, r.value().size());
    EXPECT_EQ(st.records_read + st.records_skipped, a.size());
    EXPECT_EQ(st.errors, 1u);
    // The intact prefix matches the original record-for-record.
    for (std::size_t i = 0; i < r.value().size(); ++i)
        ASSERT_TRUE(r.value().at(i) == a.at(i)) << "record " << i;
}

TEST(IngestPolicy, HeaderCorruptionNeverRecoverable)
{
    for (RecordPolicy p :
         {RecordPolicy::kSkipAndCount, RecordPolicy::kBestEffortClamp}) {
        std::stringstream ss("garbage header\n1,2,3,R\n");
        auto r = trace::readMsCsv(ss, withPolicy(p));
        EXPECT_FALSE(r.ok()) << trace::recordPolicyName(p);
    }
}

TEST(IngestPolicy, ArmedReaderFaultPointSkipsRecords)
{
    fault::FaultSpec spec;
    spec.mode = fault::Mode::EveryNth;
    spec.n = 3;
    fault::ScopedFault f("trace.read.record", spec);

    std::stringstream ss("# dlw-ms-v1,d,0,1000\n"
                         "arrival_ns,lba,blocks,op\n"
                         "10,100,8,R\n"
                         "20,200,8,W\n"
                         "30,300,8,R\n"
                         "40,400,8,W\n"
                         "50,500,8,R\n"
                         "60,600,8,W\n");
    IngestStats st;
    auto r = trace::readMsCsv(
        ss, withPolicy(RecordPolicy::kSkipAndCount), &st);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    // Every 3rd record evaluation injects: records 3 and 6.
    EXPECT_EQ(st.records_read, 4u);
    EXPECT_EQ(st.records_skipped, 2u);
    EXPECT_EQ(fault::fireCount("trace.read.record"), 2u);
}

TEST(IngestPolicy, OpenFaultPointFailsPathReads)
{
    fault::FaultSpec spec;
    spec.mode = fault::Mode::Once;
    fault::ScopedFault f("trace.open", spec);
    auto r = trace::readMsCsv("/tmp/does-not-matter.csv",
                              IngestOptions{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
    EXPECT_NE(r.status().message().find("injected"),
              std::string::npos);
}

// -------------------------------------------------------------- corrupt

TEST(Corrupt, DeterministicPerSpec)
{
    std::string in = corruptMsCsv();
    trace::CorruptSpec spec;
    spec.mode = trace::CorruptMode::kBitFlip;
    spec.seed = 11;
    spec.count = 4;
    auto a = trace::corruptBuffer(in, spec);
    auto b = trace::corruptBuffer(in, spec);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
    EXPECT_NE(a.value(), in);

    spec.seed = 12;
    auto c = trace::corruptBuffer(in, spec);
    ASSERT_TRUE(c.ok());
    EXPECT_NE(c.value(), a.value());
}

TEST(Corrupt, LineModesPreserveHeaders)
{
    std::string in = corruptMsCsv();
    for (trace::CorruptMode m :
         {trace::CorruptMode::kFieldGarbage,
          trace::CorruptMode::kDupTimestamp,
          trace::CorruptMode::kReorder}) {
        trace::CorruptSpec spec;
        spec.mode = m;
        spec.seed = 5;
        spec.count = 3;
        auto r = trace::corruptBuffer(in, spec);
        ASSERT_TRUE(r.ok()) << trace::corruptModeName(m);
        std::istringstream is(r.value());
        std::string l1, l2;
        std::getline(is, l1);
        std::getline(is, l2);
        EXPECT_EQ(l1, "# dlw-ms-v1,d,0,1000")
            << trace::corruptModeName(m);
        EXPECT_EQ(l2, "arrival_ns,lba,blocks,op")
            << trace::corruptModeName(m);
    }
}

TEST(Corrupt, TruncateCutsTheMiddle)
{
    std::string in(1000, 'x');
    trace::CorruptSpec spec;
    spec.mode = trace::CorruptMode::kTruncate;
    spec.seed = 2;
    auto r = trace::corruptBuffer(in, spec);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.value().size(), 250u);
    EXPECT_LE(r.value().size(), 750u);
}

TEST(Corrupt, UnknownModeNameRejected)
{
    EXPECT_FALSE(trace::parseCorruptMode("smash").ok());
    EXPECT_TRUE(trace::parseCorruptMode("truncate").ok());
}

/**
 * The acceptance round trip: write a clean trace, make 4 corrupt
 * variants, ingest each under skip, and verify the reader recovered
 * everything except the damaged records.
 */
TEST(Corrupt, WriteCorruptIngestRecoverRoundTrip)
{
    Rng rng(21);
    synth::Workload w = synth::Workload::makeFileServer(1 << 20, 80.0);
    MsTrace a = w.generate(rng, "torture-drive", 0, 5 * kSec);
    ASSERT_GT(a.size(), 50u);
    std::stringstream clean;
    trace::writeMsCsv(clean, a);
    const std::string bytes = clean.str();

    const trace::CorruptMode modes[] = {
        trace::CorruptMode::kFieldGarbage,
        trace::CorruptMode::kDupTimestamp,
        trace::CorruptMode::kReorder,
        trace::CorruptMode::kBitFlip,
    };
    for (std::size_t m = 0; m < 4; ++m) {
        trace::CorruptSpec spec;
        spec.mode = modes[m];
        spec.seed = 100 + m;
        spec.count = 5;
        // Keep bit flips out of the two header lines.
        if (spec.mode == trace::CorruptMode::kBitFlip)
            spec.offset = bytes.find('\n', bytes.find('\n') + 1) + 1;
        auto damaged = trace::corruptBuffer(bytes, spec);
        ASSERT_TRUE(damaged.ok()) << trace::corruptModeName(modes[m]);

        std::stringstream is(damaged.value());
        IngestStats st;
        auto r = trace::readMsCsv(
            is, withPolicy(RecordPolicy::kSkipAndCount), &st);
        ASSERT_TRUE(r.ok()) << trace::corruptModeName(modes[m]) << ": "
                            << r.status().toString();
        // Recovery floor: each damage event destroys at most two
        // records (a bit flip on a newline merges neighbours), so at
        // least size - 2 * count must survive.
        EXPECT_GE(r.value().size() + 2 * spec.count, a.size())
            << trace::corruptModeName(modes[m]);
        EXPECT_EQ(st.records_read, r.value().size());
    }
}

// ---------------------------------------------------------------- fleet

fleet::FleetConfig
smallFleet(std::size_t threads)
{
    fleet::FleetConfig cfg;
    cfg.drives = 64;
    cfg.threads = threads;
    cfg.window = 2 * kSec;
    cfg.rate = 40.0;
    cfg.max_attempts = 2;
    return cfg;
}

TEST(FleetFaults, DegradedRunIsByteIdenticalAcrossThreads)
{
    std::string reports[3];
    const std::size_t threads[3] = {1, 2, 8};
    for (int t = 0; t < 3; ++t) {
        fault::ScopedFault f("fleet.shard:mod=8");
        fleet::FleetConfig cfg = smallFleet(threads[t]);
        fleet::FleetResult r = fleet::runFleet(cfg);
        EXPECT_EQ(r.shards.size(), 56u);
        ASSERT_EQ(r.failures.size(), 8u);
        for (std::size_t k = 0; k < 8; ++k) {
            EXPECT_EQ(r.failures[k].index, k * 8);
            EXPECT_EQ(r.failures[k].error.code(),
                      StatusCode::kUnavailable);
        }
        reports[t] = renderFleetReport(cfg, r);
    }
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_EQ(reports[0], reports[2]);
    EXPECT_NE(reports[0].find("failure appendix"), std::string::npos);
    EXPECT_NE(reports[0].find("# failure drive="), std::string::npos);
}

TEST(FleetFaults, DegradedAggregateMatchesSurvivorsOnly)
{
    // The 56 survivors of a degraded run must aggregate exactly like
    // a run that never contained the failed drives.
    fleet::FleetConfig cfg = smallFleet(4);
    std::vector<fleet::DriveShard> expect;
    for (std::size_t i = 0; i < cfg.drives; ++i) {
        if (i % 8 != 0)
            expect.push_back(fleet::characterizeDrive(cfg, i));
    }
    fleet::FleetAggregate want = fleet::reduceOrdered(expect);

    fault::ScopedFault f("fleet.shard:mod=8");
    fleet::FleetResult r = fleet::runFleet(cfg);
    EXPECT_EQ(r.aggregate.drives, want.drives);
    EXPECT_EQ(r.aggregate.requests, want.requests);
    EXPECT_EQ(r.aggregate.response_ms.mean(), want.response_ms.mean());
}

TEST(FleetFaults, TransientFaultHealedByRetry)
{
    fault::ScopedFault f("fleet.shard:once");
    fleet::FleetConfig cfg = smallFleet(1);
    cfg.drives = 4;
    cfg.max_attempts = 3;
    fleet::FleetResult r = fleet::runFleet(cfg);
    EXPECT_EQ(r.shards.size(), 4u);
    EXPECT_TRUE(r.failures.empty());
    EXPECT_EQ(r.retries, 1u);
}

TEST(FleetFaults, ExhaustedRetriesLandInAppendix)
{
    fault::ScopedFault f("fleet.shard:mod=1"); // every drive, always
    fleet::FleetConfig cfg = smallFleet(2);
    cfg.drives = 3;
    cfg.max_attempts = 2;
    fleet::FleetResult r = fleet::runFleet(cfg);
    EXPECT_TRUE(r.shards.empty());
    ASSERT_EQ(r.failures.size(), 3u);
    EXPECT_EQ(r.failures[0].attempts, 2u);
    EXPECT_EQ(r.retries, 3u);
    std::string report = renderFleetReport(cfg, r);
    EXPECT_NE(report.find("no surviving drives"), std::string::npos);
}

TEST(FleetFaults, CleanRunHasNoAppendix)
{
    fleet::FleetConfig cfg = smallFleet(2);
    cfg.drives = 4;
    fleet::FleetResult r = fleet::runFleet(cfg);
    EXPECT_TRUE(r.failures.empty());
    EXPECT_EQ(r.retries, 0u);
    std::string report = renderFleetReport(cfg, r);
    EXPECT_EQ(report.find("failure appendix"), std::string::npos);
}

} // anonymous namespace
} // namespace dlw
