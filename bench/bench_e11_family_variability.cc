/**
 * @file
 * E11 — variability across drives of the same family.
 *
 * Regenerates the percentile-band figure: for every hour of the
 * observation, the 10th/50th/90th percentile of per-drive request
 * counts across the family.  The wide, persistent gap between the
 * bands is the abstract's "variability across drives of the same
 * family".  A classification table and the activity Gini summarize
 * the spread.
 */

#include <iostream>

#include "benchutil.hh"
#include "core/family.hh"
#include "core/report.hh"

#include "obs/export.hh"

using namespace dlw;

int
main()
{
    obs::BenchReportGuard obs_guard("e11_family_variability");
    std::cout << "E11: cross-drive variability ("
              << bench::kHourDrives << " drives)\n\n";

    synth::FamilyModel family = bench::makeFamily();
    auto traces =
        family.generateHourTraces(bench::kHourDrives, bench::kHourSpan);

    // Percentile bands over the first week, every third hour.
    auto bands = core::hourlyPercentileBands(traces, 168);
    std::vector<std::pair<double, double>> p10, p50, p90;
    for (std::size_t h = 0; h < bands.size(); h += 3) {
        p10.emplace_back(static_cast<double>(h), bands[h][0]);
        p50.emplace_back(static_cast<double>(h), bands[h][1]);
        p90.emplace_back(static_cast<double>(h), bands[h][2]);
    }
    core::printSeries(std::cout, "E11-band", "p10", p10);
    std::cout << '\n';
    core::printSeries(std::cout, "E11-band", "p50", p50);
    std::cout << '\n';
    core::printSeries(std::cout, "E11-band", "p90", p90);
    std::cout << '\n';

    core::FamilyReport rep = core::analyzeFamily(traces, 0.9);
    core::Table t("family spread summary", {"metric", "value"});
    t.addRow({"drives", std::to_string(rep.drives)});
    t.addRow({"utilization p10 %", core::cell(100.0 * rep.util_p10)});
    t.addRow({"utilization p50 %", core::cell(100.0 * rep.util_p50)});
    t.addRow({"utilization p90 %", core::cell(100.0 * rep.util_p90)});
    t.addRow({"p90/p10 ratio",
              core::cell(rep.util_p90 /
                         std::max(rep.util_p10, 1e-9))});
    t.addRow({"activity Gini", core::cell(rep.activity_gini)});
    t.print(std::cout);
    std::cout << '\n';

    core::Table c("behavioural tiers", {"tier", "fraction %"});
    for (auto tier : {core::UtilizationTier::Idle,
                      core::UtilizationTier::Light,
                      core::UtilizationTier::Moderate,
                      core::UtilizationTier::Heavy,
                      core::UtilizationTier::Saturated}) {
        c.addRow({core::tierName(tier),
                  core::cell(100.0 * rep.tierFraction(tier))});
    }
    c.print(std::cout);

    std::cout << "\nShape check: the p90 band sits an order of "
                 "magnitude above p10 at every hour, and activity "
                 "volume is concentrated (high Gini).\n";
    return 0;
}
