/**
 * @file
 * Shared workload definitions for the experiment harness.
 *
 * Every bench binary regenerates its inputs from fixed seeds so each
 * table/figure is reproducible in isolation.  The "standard ms set"
 * models the paper's Millisecond traces: a handful of drives from
 * one family running different enterprise workload classes for the
 * same observation window.
 */

#ifndef DLW_BENCH_BENCHUTIL_HH
#define DLW_BENCH_BENCHUTIL_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "disk/drive.hh"
#include "synth/family.hh"
#include "synth/workload.hh"
#include "trace/mstrace.hh"

namespace dlw
{
namespace bench
{

/** One drive of the Millisecond trace set. */
struct MsDrive
{
    std::string name;
    std::string klass;
    trace::MsTrace tr;
    disk::ServiceLog log;
};

/** Window length of the standard ms set. */
constexpr Tick kMsWindow = 30 * kMinute;

/** Master seed of the harness. */
constexpr std::uint64_t kSeed = 20090614;

/**
 * Build one ms-set drive: generate the workload and service it.
 */
inline MsDrive
makeDrive(const std::string &name, const std::string &klass,
          synth::Workload workload, std::uint64_t seed,
          disk::DriveConfig config = disk::DriveConfig::makeEnterprise())
{
    Rng rng(seed);
    MsDrive d;
    d.name = name;
    d.klass = klass;
    d.tr = workload.generate(rng, name, 0, kMsWindow);
    disk::DiskDrive drive(std::move(config));
    d.log = drive.service(d.tr);
    return d;
}

/**
 * The standard Millisecond trace set: eight drives covering the
 * workload classes the paper's systems mix.
 */
inline std::vector<MsDrive>
makeStandardMsSet()
{
    const disk::DriveConfig cfg = disk::DriveConfig::makeEnterprise();
    const Lba cap = cfg.geometry.capacityBlocks();

    std::vector<MsDrive> set;
    set.push_back(makeDrive("ms-oltp-lo", "oltp",
                            synth::Workload::makeOltp(cap, 40.0, 11),
                            kSeed + 1));
    set.push_back(makeDrive("ms-oltp-hi", "oltp",
                            synth::Workload::makeOltp(cap, 150.0, 12),
                            kSeed + 2));
    set.push_back(makeDrive("ms-file-lo", "file-server",
                            synth::Workload::makeFileServer(cap, 30.0,
                                                            13),
                            kSeed + 3));
    set.push_back(makeDrive("ms-file-hi", "file-server",
                            synth::Workload::makeFileServer(cap, 90.0,
                                                            14),
                            kSeed + 4));
    set.push_back(makeDrive("ms-stream", "streaming",
                            synth::Workload::makeStreaming(cap, 90.0),
                            kSeed + 5));
    set.push_back(makeDrive("ms-backup", "backup",
                            synth::Workload::makeBackup(cap, 40.0),
                            kSeed + 6));
    set.push_back(makeDrive("ms-mixed-1", "mixed",
                            synth::Workload::makeFileServer(cap, 60.0,
                                                            15),
                            kSeed + 7));
    set.push_back(makeDrive("ms-mixed-2", "mixed",
                            synth::Workload::makeOltp(cap, 80.0, 16),
                            kSeed + 8));
    return set;
}

/** Family model shared by the Hour/Lifetime experiments. */
inline synth::FamilyModel
makeFamily()
{
    synth::FamilyConfig cfg;
    cfg.family = "DLW-E15K";
    cfg.seed = kSeed;
    return synth::FamilyModel(cfg);
}

/** Hours in the standard Hour-trace observation (four weeks). */
constexpr std::size_t kHourSpan = 24 * 7 * 4;

/** Number of drives in the Hour trace set. */
constexpr std::size_t kHourDrives = 64;

/** Number of drives in the Lifetime trace set. */
constexpr std::size_t kLifetimeDrives = 512;

} // namespace bench
} // namespace dlw

#endif // DLW_BENCH_BENCHUTIL_HH
