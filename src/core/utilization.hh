/**
 * @file
 * Utilization analysis at arbitrary time scales.
 *
 * The paper's first question: how busy are disks, and how does the
 * answer change with the measurement window?  A drive that is 25%
 * utilized over an hour may still contain minutes at 100%.  The
 * analysis therefore reports utilization as a distribution over
 * bins of a chosen width, not just a single mean.
 */

#ifndef DLW_CORE_UTILIZATION_HH
#define DLW_CORE_UTILIZATION_HH

#include <vector>

#include "disk/drive.hh"
#include "stats/ecdf.hh"
#include "stats/summary.hh"
#include "trace/hourtrace.hh"

namespace dlw
{
namespace core
{

/**
 * Utilization figures at one bin width.
 */
struct UtilizationProfile
{
    /** Bin width the profile was computed at. */
    Tick bin_width = 0;
    /** Mean utilization across bins. */
    double mean = 0.0;
    /** Peak bin utilization. */
    double peak = 0.0;
    /** Median bin utilization. */
    double median = 0.0;
    /** 95th percentile bin utilization. */
    double p95 = 0.0;
    /** Fraction of bins fully idle (0 busy time). */
    double idle_fraction = 0.0;
    /** Fraction of bins at or above 90% busy. */
    double saturated_fraction = 0.0;
    /** The per-bin utilization series itself. */
    std::vector<double> series;
};

/**
 * Incremental utilization profile: feed one clamped per-bin sample at
 * a time (in bin order) and finish into the profile.  The streaming
 * drive pipeline emits bin samples as busy intervals close, so the
 * profile never needs the whole series twice; the series itself is
 * still recorded in the profile (O(bins), not O(requests)).
 */
class UtilizationAccumulator
{
  public:
    /** @param bin_width Measurement window (> 0). */
    explicit UtilizationAccumulator(Tick bin_width);

    /** One per-bin utilization sample in [0, 1], in bin order. */
    void observe(double u);

    /** Derive the profile over everything observed so far. */
    UtilizationProfile finish();

  private:
    UtilizationProfile p_;
    stats::Ecdf ecdf_;
    std::size_t idle_ = 0;
    std::size_t saturated_ = 0;
    double sum_ = 0.0;
};

/**
 * Compute a utilization profile from a drive service log.
 *
 * @param log       Drive run to analyse.
 * @param bin_width Measurement window (> 0).
 */
UtilizationProfile utilizationProfile(const disk::ServiceLog &log,
                                      Tick bin_width);

/**
 * Compute a utilization profile from hour-granularity counters
 * (bin width is fixed at one hour by the data).
 */
UtilizationProfile utilizationProfile(const trace::HourTrace &trace);

/**
 * Utilization of the same activity measured at several widths —
 * the "different time-scales" view.  Means agree across scales by
 * construction; peaks grow as the window shrinks.
 *
 * @param log    Drive run to analyse.
 * @param widths Bin widths to evaluate.
 */
std::vector<UtilizationProfile> utilizationAcrossScales(
    const disk::ServiceLog &log, const std::vector<Tick> &widths);

} // namespace core
} // namespace dlw

#endif // DLW_CORE_UTILIZATION_HH
