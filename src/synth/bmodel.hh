/**
 * @file
 * b-model multifractal traffic cascade.
 *
 * The b-model (Wang et al., SDM 2002) reproduces the "bursty at
 * every time scale" property of storage traffic with a single bias
 * parameter b in (0.5, 1): total volume is split recursively between
 * the two halves of each interval, giving one half fraction b and
 * the other 1-b at random.  At b = 0.5 the result is uniform; as b
 * approaches 1 the traffic concentrates into ever sharper bursts and
 * the Hurst exponent of the counts rises.  This is the generator
 * behind the E6/E12 burstiness sweeps.
 */

#ifndef DLW_SYNTH_BMODEL_HH
#define DLW_SYNTH_BMODEL_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace dlw
{
namespace synth
{

/**
 * Cascade generator.
 */
class BModel
{
  public:
    /**
     * @param bias   Split bias b in [0.5, 1).
     * @param levels Cascade depth; produces 2^levels bins.
     */
    BModel(double bias, std::uint32_t levels);

    /** Split bias. */
    double bias() const { return bias_; }

    /** Cascade depth. */
    std::uint32_t levels() const { return levels_; }

    /** Number of bins produced, 2^levels. */
    std::size_t bins() const { return std::size_t{1} << levels_; }

    /**
     * Generate per-bin counts summing (approximately, due to
     * rounding) to total.
     *
     * @param rng   Random source.
     * @param total Total number of events to distribute.
     * @return bins() non-negative integer counts.
     */
    std::vector<std::uint64_t> counts(Rng &rng,
                                      std::uint64_t total) const;

    /**
     * Generate arrival ticks inside [start, start + duration):
     * counts are distributed by the cascade and arrival times drawn
     * uniformly inside each bin, then sorted.
     *
     * @param rng      Random source.
     * @param start    Window start tick.
     * @param duration Window length in ticks.
     * @param total    Number of arrivals.
     * @return Sorted arrival ticks.
     */
    std::vector<Tick> arrivals(Rng &rng, Tick start, Tick duration,
                               std::uint64_t total) const;

    /**
     * Theoretical Hurst exponent of the aggregated-variance method
     * applied to cascade counts.
     *
     * With mu2 = (b^2 + (1-b)^2) / 2 the variance of the
     * m-aggregated mean scales as m^(-2 - log2 mu2), giving
     * H = -log2(mu2) / 2 = (1 - log2(b^2 + (1-b)^2)) / 2,
     * clipped to [0.5, 1].  The value is what hurstAggregatedVariance
     * should recover on cascade output (b strictly above 0.5; at
     * b = 0.5 the cascade is deterministic and H is undefined).
     */
    static double hurstOfBias(double bias);

  private:
    double bias_;
    std::uint32_t levels_;
};

} // namespace synth
} // namespace dlw

#endif // DLW_SYNTH_BMODEL_HH
