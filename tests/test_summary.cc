/**
 * @file
 * Unit tests for stats/summary: streaming moments and merging.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/summary.hh"

namespace dlw
{
namespace stats
{
namespace
{

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
    EXPECT_DOUBLE_EQ(s.skewness(), 0.0);
}

TEST(Summary, KnownSmallSample)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.4);
}

TEST(Summary, SampleVarianceUsesNMinusOne)
{
    Summary s;
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 2.0);
}

TEST(Summary, SingleValueDegenerate)
{
    Summary s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 0.0);
}

TEST(Summary, SkewnessSigns)
{
    Summary right;
    for (double v : {1.0, 1.0, 1.0, 1.0, 10.0})
        right.add(v);
    EXPECT_GT(right.skewness(), 0.5);

    Summary left;
    for (double v : {10.0, 10.0, 10.0, 10.0, 1.0})
        left.add(v);
    EXPECT_LT(left.skewness(), -0.5);

    Summary sym;
    for (double v : {-2.0, -1.0, 0.0, 1.0, 2.0})
        sym.add(v);
    EXPECT_NEAR(sym.skewness(), 0.0, 1e-12);
}

TEST(Summary, NormalSampleMoments)
{
    Rng rng(1);
    Summary s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
    EXPECT_NEAR(s.skewness(), 0.0, 0.05);
    EXPECT_NEAR(s.excessKurtosis(), 0.0, 0.1);
}

TEST(Summary, ExponentialSkewAndKurtosis)
{
    Rng rng(2);
    Summary s;
    for (int i = 0; i < 400000; ++i)
        s.add(rng.exponential(1.0));
    EXPECT_NEAR(s.skewness(), 2.0, 0.15);
    EXPECT_NEAR(s.excessKurtosis(), 6.0, 1.0);
    EXPECT_NEAR(s.cv(), 1.0, 0.02);
}

TEST(Summary, MergeMatchesSequential)
{
    Rng rng(3);
    Summary all, a, b;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.lognormal(0.0, 1.0);
        all.add(v);
        (i % 3 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
    EXPECT_NEAR(a.skewness(), all.skewness(), 1e-7);
    EXPECT_NEAR(a.excessKurtosis(), all.excessKurtosis(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty)
{
    Summary a, b;
    a.add(1.0);
    a.add(2.0);
    Summary before = a;
    a.merge(b); // no-op
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), before.mean());

    b.merge(a); // adopt
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Summary, ClearResets)
{
    Summary s;
    s.add(5.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Summary, CvOfConstantIsZero)
{
    Summary s;
    for (int i = 0; i < 10; ++i)
        s.add(7.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

} // anonymous namespace
} // namespace stats
} // namespace dlw
