/**
 * @file
 * E20 (extension) — closed-loop throughput/response curves.
 *
 * The interactive complement to the open-loop experiments: N
 * think-time clients against one drive.  Throughput climbs with
 * concurrency until the mechanism saturates, after which extra
 * clients only add queueing delay — the knee is where the paper's
 * "moderate utilization" operating points live, and SSTF pushes it
 * right by shortening seeks under deep queues.
 */

#include <iostream>

#include "benchutil.hh"
#include "core/report.hh"
#include "disk/closedloop.hh"

#include "obs/export.hh"

using namespace dlw;

int
main()
{
    obs::BenchReportGuard obs_guard("e20_closed_loop");
    std::cout << "E20: closed-loop concurrency sweep\n\n";

    disk::DriveConfig cfg = disk::DriveConfig::makeEnterprise();
    cfg.cache.enabled = false;
    const Lba cap = cfg.geometry.capacityBlocks();

    disk::RequestFactory reads = [cap](Rng &rng) {
        trace::Request r;
        r.lba = static_cast<Lba>(
            rng.uniformInt(0, static_cast<std::int64_t>(cap) - 9));
        r.blocks = 8;
        r.op = trace::Op::Read;
        return r;
    };

    core::Table t("closed-loop sweep (8-block random reads, "
                  "10 ms think)",
                  {"clients", "sched", "X req/s", "R ms", "util%"});
    std::vector<std::pair<double, double>> curve_fcfs, curve_sstf;

    for (std::size_t n : {1, 2, 4, 8, 16, 32, 64}) {
        for (bool sstf : {false, true}) {
            disk::DriveConfig c = cfg;
            c.sched = sstf ? disk::SchedPolicy::Sstf
                           : disk::SchedPolicy::Fcfs;
            disk::ClosedLoopConfig lc;
            lc.clients = n;
            lc.mean_think = 10 * kMsec;
            lc.duration = 30 * kSec;
            lc.seed = bench::kSeed + 20;
            disk::ClosedLoopResult r =
                disk::runClosedLoop(c, reads, lc);
            t.addRow({std::to_string(n), sstf ? "SSTF" : "FCFS",
                      core::cell(r.throughput),
                      core::cell(1000.0 * r.mean_response),
                      core::cell(100.0 * r.utilization)});
            (sstf ? curve_sstf : curve_fcfs)
                .emplace_back(static_cast<double>(n), r.throughput);
        }
    }
    t.print(std::cout);
    std::cout << '\n';
    core::printSeries(std::cout, "E20-throughput", "FCFS",
                      curve_fcfs);
    std::cout << '\n';
    core::printSeries(std::cout, "E20-throughput", "SSTF",
                      curve_sstf);

    std::cout << "\nShape check: throughput saturates once the "
                 "mechanism is pinned; SSTF lifts the saturation "
                 "plateau by servicing deep queues in seek order.\n";
    return 0;
}
