#include "stats/acf.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dlw
{
namespace stats
{

std::vector<double>
autocorrelation(const std::vector<double> &xs, std::size_t max_lag)
{
    dlw_assert(xs.size() >= 2, "autocorrelation needs >= 2 samples");
    max_lag = std::min(max_lag, xs.size() - 1);

    const double n = static_cast<double>(xs.size());
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= n;

    double c0 = 0.0;
    for (double x : xs)
        c0 += (x - mean) * (x - mean);
    c0 /= n;

    std::vector<double> out(max_lag + 1, 0.0);
    if (c0 == 0.0)
        return out; // constant series: no correlation structure

    out[0] = 1.0;
    for (std::size_t k = 1; k <= max_lag; ++k) {
        double ck = 0.0;
        for (std::size_t t = 0; t + k < xs.size(); ++t)
            ck += (xs[t] - mean) * (xs[t + k] - mean);
        ck /= n;
        out[k] = ck / c0;
    }
    return out;
}

std::size_t
decorrelationLag(const std::vector<double> &acf, double threshold)
{
    for (std::size_t k = 1; k < acf.size(); ++k) {
        if (acf[k] < threshold)
            return k;
    }
    return acf.size();
}

Periodicity
dominantPeriod(const std::vector<double> &xs, std::size_t min_lag,
               std::size_t max_lag)
{
    dlw_assert(min_lag >= 2, "minimum period must be >= 2");
    dlw_assert(max_lag > min_lag, "period range inverted");
    dlw_assert(xs.size() > 2 * max_lag,
               "series too short for the requested period range");

    const std::vector<double> acf = autocorrelation(xs, max_lag);

    Periodicity best;
    for (std::size_t k = min_lag; k < max_lag; ++k) {
        // A local peak that beats everything found so far.
        if (acf[k] > acf[k - 1] && acf[k] >= acf[k + 1] &&
            acf[k] > best.strength) {
            best.period = k;
            best.strength = acf[k];
        }
    }
    return best;
}

} // namespace stats
} // namespace dlw
