/**
 * @file
 * Unit tests for the bench-regression gate: the minimal JSON parser,
 * BENCH report extraction, and the threshold semantics of
 * diffBenchReports (wall growth, p95 growth, volume drift, metrics
 * appearing or disappearing).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/benchdiff.hh"

namespace dlw
{
namespace obs
{
namespace
{

// ---------------------------------------------------------------------------
// JSON parser.

TEST(Json, ParsesScalarsAndNesting)
{
    StatusOr<JsonValue> doc = parseJson(
        "{\"a\":1.5,\"b\":\"x\\\"y\",\"c\":[true,false,null],"
        "\"d\":{\"e\":-2e3}}");
    ASSERT_TRUE(doc.ok());
    const JsonValue &v = doc.value();
    ASSERT_EQ(v.type, JsonValue::Type::kObject);
    EXPECT_DOUBLE_EQ(v.find("a")->number, 1.5);
    EXPECT_EQ(v.find("b")->str, "x\"y");
    ASSERT_EQ(v.find("c")->items.size(), 3u);
    EXPECT_TRUE(v.find("c")->items[0].boolean);
    EXPECT_EQ(v.find("c")->items[2].type, JsonValue::Type::kNull);
    EXPECT_DOUBLE_EQ(v.find("d")->find("e")->number, -2000.0);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("").ok());
    EXPECT_FALSE(parseJson("{").ok());
    EXPECT_FALSE(parseJson("{\"a\":}").ok());
    EXPECT_FALSE(parseJson("[1,2,]").ok());
    EXPECT_FALSE(parseJson("{\"a\":1} trailing").ok());
    EXPECT_FALSE(parseJson("nul").ok());
}

TEST(Json, RejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += '[';
    EXPECT_FALSE(parseJson(deep).ok());
}

// ---------------------------------------------------------------------------
// BENCH report extraction.

/** A minimal BENCH json with one counter and one histogram. */
std::string
benchJson(double wall, double work, std::uint64_t count, double p95)
{
    std::ostringstream os;
    os << "{\"bench\":\"demo\",\"wall_seconds\":" << wall
       << ",\"snapshot\":{\"metrics\":{"
       << "\"demo.work\":{\"type\":\"counter\",\"unit\":\"ops\","
       << "\"subsystem\":\"demo\",\"value\":" << work << "},"
       << "\"demo.lat\":{\"type\":\"histogram\",\"unit\":\"s\","
       << "\"subsystem\":\"demo\",\"count\":" << count
       << ",\"sum\":1,\"mean\":1,\"min\":1,\"max\":1,\"p50\":1,"
       << "\"p95\":" << p95 << ",\"p99\":1}"
       << "},\"spans\":{}}}";
    return os.str();
}

TEST(BenchReport, ParsesWallAndMetrics)
{
    StatusOr<BenchReport> rep =
        parseBenchReport(benchJson(2.5, 100, 32, 0.7));
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.value().bench, "demo");
    EXPECT_DOUBLE_EQ(rep.value().wall_seconds, 2.5);
    ASSERT_EQ(rep.value().metrics.size(), 2u);
    const BenchSample &work = rep.value().metrics.at("demo.work");
    EXPECT_EQ(work.type, MetricType::kCounter);
    EXPECT_DOUBLE_EQ(work.value, 100.0);
    const BenchSample &lat = rep.value().metrics.at("demo.lat");
    EXPECT_EQ(lat.type, MetricType::kHistogram);
    EXPECT_EQ(lat.count, 32u);
    EXPECT_DOUBLE_EQ(lat.p95, 0.7);
}

TEST(BenchReport, RejectsNonBenchJson)
{
    EXPECT_FALSE(parseBenchReport("{\"other\":1}").ok());
    EXPECT_FALSE(parseBenchReport("not json").ok());
}

TEST(BenchReport, ReadReportsMissingFile)
{
    EXPECT_FALSE(readBenchReport("/nonexistent/BENCH_x.json").ok());
}

// ---------------------------------------------------------------------------
// Diff semantics.

BenchReport
report(double wall, double work, std::uint64_t count, double p95)
{
    return parseBenchReport(benchJson(wall, work, count, p95))
        .valueOrThrow();
}

TEST(BenchDiff, IdenticalReportsAreClean)
{
    const BenchReport r = report(2.0, 100, 32, 0.5);
    const BenchDiffResult d =
        diffBenchReports(r, r, BenchDiffThresholds());
    EXPECT_FALSE(d.regressed);
    for (const BenchDiffEntry &e : d.entries)
        EXPECT_FALSE(e.regressed) << e.key;
    EXPECT_TRUE(d.only_old.empty());
    EXPECT_TRUE(d.only_new.empty());
}

TEST(BenchDiff, WallGrowthBeyondThresholdRegresses)
{
    const BenchReport older = report(2.0, 100, 32, 0.5);
    const BenchReport newer = report(2.5, 100, 32, 0.5); // +25 %
    BenchDiffThresholds th;
    th.wall_pct = 10.0;
    const BenchDiffResult d = diffBenchReports(older, newer, th);
    EXPECT_TRUE(d.regressed);
    bool found = false;
    for (const BenchDiffEntry &e : d.entries) {
        if (e.key == "wall_seconds") {
            found = true;
            EXPECT_TRUE(e.regressed);
            EXPECT_NEAR(e.delta_pct, 25.0, 1e-9);
        }
    }
    EXPECT_TRUE(found);
    // A faster run never regresses on wall time.
    EXPECT_FALSE(
        diffBenchReports(newer, older, th).regressed);
}

TEST(BenchDiff, WallGrowthWithinThresholdIsClean)
{
    const BenchReport older = report(2.0, 100, 32, 0.5);
    const BenchReport newer = report(2.1, 100, 32, 0.5); // +5 %
    EXPECT_FALSE(
        diffBenchReports(older, newer, BenchDiffThresholds())
            .regressed);
}

TEST(BenchDiff, P95GrowthBeyondThresholdRegresses)
{
    const BenchReport older = report(2.0, 100, 32, 0.5);
    const BenchReport newer = report(2.0, 100, 32, 0.8); // +60 %
    const BenchDiffResult d =
        diffBenchReports(older, newer, BenchDiffThresholds());
    EXPECT_TRUE(d.regressed);
    bool found = false;
    for (const BenchDiffEntry &e : d.entries) {
        if (e.key == "demo.lat.p95") {
            found = true;
            EXPECT_TRUE(e.regressed);
        }
    }
    EXPECT_TRUE(found);
}

TEST(BenchDiff, CounterDriftEitherWayRegresses)
{
    const BenchReport base = report(2.0, 100, 32, 0.5);
    const BenchReport more = report(2.0, 120, 32, 0.5); // +20 %
    const BenchReport less = report(2.0, 80, 32, 0.5);  // -20 %
    EXPECT_TRUE(
        diffBenchReports(base, more, BenchDiffThresholds()).regressed);
    EXPECT_TRUE(
        diffBenchReports(base, less, BenchDiffThresholds()).regressed);
}

TEST(BenchDiff, MissingAndNewMetricsAreListed)
{
    const BenchReport older = report(2.0, 100, 32, 0.5);
    BenchReport newer = older;
    newer.metrics.erase("demo.lat");
    BenchSample fresh;
    fresh.type = MetricType::kCounter;
    fresh.value = 1.0;
    newer.metrics["demo.fresh"] = fresh;
    const BenchDiffResult d =
        diffBenchReports(older, newer, BenchDiffThresholds());
    ASSERT_EQ(d.only_old.size(), 1u);
    EXPECT_EQ(d.only_old[0], "demo.lat");
    ASSERT_EQ(d.only_new.size(), 1u);
    EXPECT_EQ(d.only_new[0], "demo.fresh");
}

TEST(BenchDiff, RenderNamesTheVerdict)
{
    const BenchReport older = report(2.0, 100, 32, 0.5);
    const BenchReport slower = report(3.0, 100, 32, 0.5);
    const BenchDiffThresholds th;

    const BenchDiffResult clean = diffBenchReports(older, older, th);
    EXPECT_NE(renderBenchDiff(older, older, clean)
                  .find("no regression"),
              std::string::npos);

    const BenchDiffResult bad = diffBenchReports(older, slower, th);
    const std::string text = renderBenchDiff(older, slower, bad);
    EXPECT_NE(text.find("REGRESSION"), std::string::npos);
    EXPECT_NE(text.find("wall_seconds"), std::string::npos);
}

} // anonymous namespace
} // namespace obs
} // namespace dlw
