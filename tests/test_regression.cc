/**
 * @file
 * Unit tests for stats/regression.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "stats/regression.hh"

namespace dlw
{
namespace stats
{
namespace
{

TEST(LeastSquares, ExactLine)
{
    std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
    std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
    LineFit f = leastSquares(xs, ys);
    EXPECT_DOUBLE_EQ(f.slope, 2.0);
    EXPECT_DOUBLE_EQ(f.intercept, 1.0);
    EXPECT_DOUBLE_EQ(f.r2, 1.0);
    EXPECT_EQ(f.n, 4u);
}

TEST(LeastSquares, NegativeSlope)
{
    std::vector<double> xs = {1.0, 2.0, 3.0};
    std::vector<double> ys = {3.0, 1.0, -1.0};
    LineFit f = leastSquares(xs, ys);
    EXPECT_DOUBLE_EQ(f.slope, -2.0);
    EXPECT_DOUBLE_EQ(f.intercept, 5.0);
}

TEST(LeastSquares, NoisyLineRecoversSlope)
{
    Rng rng(3);
    std::vector<double> xs, ys;
    for (int i = 0; i < 10000; ++i) {
        double x = rng.uniform(0.0, 10.0);
        xs.push_back(x);
        ys.push_back(0.7 * x + 2.0 + rng.normal(0.0, 0.5));
    }
    LineFit f = leastSquares(xs, ys);
    EXPECT_NEAR(f.slope, 0.7, 0.02);
    EXPECT_NEAR(f.intercept, 2.0, 0.05);
    EXPECT_GT(f.r2, 0.9);
}

TEST(LeastSquares, PureNoiseHasLowR2)
{
    Rng rng(4);
    std::vector<double> xs, ys;
    for (int i = 0; i < 2000; ++i) {
        xs.push_back(rng.uniform());
        ys.push_back(rng.uniform());
    }
    LineFit f = leastSquares(xs, ys);
    EXPECT_LT(f.r2, 0.05);
}

TEST(LeastSquares, VerticalDataDegenerates)
{
    std::vector<double> xs = {2.0, 2.0, 2.0};
    std::vector<double> ys = {1.0, 2.0, 3.0};
    LineFit f = leastSquares(xs, ys);
    EXPECT_DOUBLE_EQ(f.slope, 0.0);
    EXPECT_DOUBLE_EQ(f.intercept, 2.0);
    EXPECT_DOUBLE_EQ(f.r2, 0.0);
}

TEST(LeastSquares, HorizontalDataPerfect)
{
    std::vector<double> xs = {1.0, 2.0, 3.0};
    std::vector<double> ys = {4.0, 4.0, 4.0};
    LineFit f = leastSquares(xs, ys);
    EXPECT_DOUBLE_EQ(f.slope, 0.0);
    EXPECT_DOUBLE_EQ(f.intercept, 4.0);
    EXPECT_DOUBLE_EQ(f.r2, 1.0);
}

TEST(LeastSquaresDeathTest, BadInputs)
{
    std::vector<double> one = {1.0};
    std::vector<double> two = {1.0, 2.0};
    EXPECT_DEATH(leastSquares(one, one), "at least two");
    EXPECT_DEATH(leastSquares(one, two), "differ in size");
}

} // anonymous namespace
} // namespace stats
} // namespace dlw
