#include "trace/spc.hh"

#include <fstream>
#include <ostream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace dlw
{
namespace trace
{

MsTrace
readSpc(std::istream &is, const std::string &drive_id, int asu)
{
    MsTrace trace(drive_id, 0, 0);
    std::string line;
    std::size_t lineno = 0;
    Tick last = 0;

    while (std::getline(is, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        auto f = split(t, ',');
        if (f.size() < 5)
            dlw_fatal("SPC line ", lineno, ": expected 5 fields");

        int rec_asu = static_cast<int>(parseInt(f[0], "asu"));
        if (asu >= 0 && rec_asu != asu)
            continue;

        Request r;
        // SPC addresses are byte offsets in some dialects and block
        // addresses in others; the common public traces use blocks.
        r.lba = parseUint(f[1], "lba");
        std::uint64_t size_bytes = parseUint(f[2], "size");
        if (size_bytes == 0 || size_bytes % kBlockBytes != 0) {
            dlw_fatal("SPC line ", lineno,
                      ": size not a positive multiple of 512");
        }
        r.blocks = static_cast<BlockCount>(size_bytes / kBlockBytes);

        std::string op = trim(f[3]);
        if (op == "r" || op == "R")
            r.op = Op::Read;
        else if (op == "w" || op == "W")
            r.op = Op::Write;
        else
            dlw_fatal("SPC line ", lineno, ": bad opcode '", op, "'");

        double ts = parseDouble(f[4], "timestamp");
        if (ts < 0.0)
            dlw_fatal("SPC line ", lineno, ": negative timestamp");
        r.arrival = secondsToTicks(ts);
        last = std::max(last, r.arrival);
        trace.append(r);
    }

    trace.setWindow(0, trace.empty() ? 0 : last + 1);
    trace.sortByArrival();
    return trace;
}

MsTrace
readSpc(const std::string &path, const std::string &drive_id, int asu)
{
    std::ifstream is(path);
    if (!is)
        dlw_fatal("cannot open '", path, "' for reading");
    return readSpc(is, drive_id, asu);
}

void
writeSpc(std::ostream &os, const MsTrace &trace)
{
    for (const Request &r : trace.requests()) {
        os << 0 << ',' << r.lba << ',' << r.bytes() << ','
           << (r.isRead() ? 'r' : 'w') << ','
           << formatDouble(ticksToSeconds(r.arrival), 9) << '\n';
    }
}

} // namespace trace
} // namespace dlw
