#include "obs/metrics.hh"

#include <algorithm>
#include <thread>

#include "common/logging.hh"
#include "obs/span.hh"

namespace dlw
{
namespace obs
{

namespace detail
{

std::atomic<int> g_armed_sinks{0};

std::size_t
stripeIndex()
{
    // A stable per-thread stripe: hash the thread id once and cache
    // it, so the hot path is a thread_local read, not a hash.
    thread_local const std::size_t stripe =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        kStripes;
    return stripe;
}

} // namespace detail

void
enable()
{
    detail::g_armed_sinks.fetch_add(1, std::memory_order_relaxed);
}

void
disable()
{
    const int prev =
        detail::g_armed_sinks.fetch_sub(1, std::memory_order_relaxed);
    dlw_assert(prev > 0, "obs::disable without matching enable");
}

bool
enabled()
{
    return detail::armed();
}

const char *
metricTypeName(MetricType type)
{
    switch (type) {
      case MetricType::kCounter:
        return "counter";
      case MetricType::kGauge:
        return "gauge";
      case MetricType::kHistogram:
        return "histogram";
    }
    return "unknown";
}

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (const Slot &s : slots_)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (Slot &s : slots_)
        s.v.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(double lo, double hi,
                     std::size_t bins_per_decade)
    : lo_(lo), hi_(hi), bins_per_decade_(bins_per_decade)
{
    stripes_.reserve(detail::kStripes);
    for (std::size_t i = 0; i < detail::kStripes; ++i) {
        stripes_.push_back(
            std::make_unique<Stripe>(lo, hi, bins_per_decade));
    }
}

void
Histogram::record(double x)
{
    if (!detail::armed())
        return;
    Stripe &s = *stripes_[detail::stripeIndex()];
    std::lock_guard<std::mutex> lk(s.mu);
    s.sum.add(x);
    s.hist.add(x);
}

stats::Summary
Histogram::summarize() const
{
    stats::Summary out;
    for (const auto &s : stripes_) {
        std::lock_guard<std::mutex> lk(s->mu);
        out.merge(s->sum);
    }
    return out;
}

stats::LogHistogram
Histogram::merged() const
{
    stats::LogHistogram out(lo_, hi_, bins_per_decade_);
    for (const auto &s : stripes_) {
        std::lock_guard<std::mutex> lk(s->mu);
        out.merge(s->hist);
    }
    return out;
}

void
Histogram::reset()
{
    for (const auto &s : stripes_) {
        std::lock_guard<std::mutex> lk(s->mu);
        s->sum.clear();
        s->hist = stats::LogHistogram(lo_, hi_, bins_per_decade_);
    }
}

Registry &
Registry::instance()
{
    static Registry *r = new Registry();
    return *r;
}

Registry::Entry &
Registry::entryFor(const std::string &name, MetricType type,
                   const std::string &unit,
                   const std::string &subsystem,
                   const std::string &help)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const std::unique_ptr<Entry> &e, const std::string &n) {
            return e->info.name < n;
        });
    if (it != entries_.end() && (*it)->info.name == name) {
        dlw_assert((*it)->info.type == type,
                   "metric '", name, "' re-registered as ",
                   metricTypeName(type), " but is ",
                   metricTypeName((*it)->info.type));
        return **it;
    }
    auto e = std::make_unique<Entry>();
    e->info = MetricInfo{name, type, unit, subsystem, help};
    Entry &ref = *e;
    entries_.insert(it, std::move(e));
    return ref;
}

Counter &
Registry::counter(const std::string &name, const std::string &unit,
                  const std::string &subsystem,
                  const std::string &help)
{
    Entry &e =
        entryFor(name, MetricType::kCounter, unit, subsystem, help);
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &unit,
                const std::string &subsystem, const std::string &help)
{
    Entry &e = entryFor(name, MetricType::kGauge, unit, subsystem,
                        help);
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &unit,
                    const std::string &subsystem,
                    const std::string &help, double lo, double hi,
                    std::size_t bins_per_decade)
{
    Entry &e = entryFor(name, MetricType::kHistogram, unit, subsystem,
                        help);
    if (!e.histogram) {
        e.histogram =
            std::make_unique<Histogram>(lo, hi, bins_per_decade);
    }
    return *e.histogram;
}

std::vector<MetricSnapshot>
Registry::snapshotMetrics() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<MetricSnapshot> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_) {
        MetricSnapshot m;
        m.info = e->info;
        switch (e->info.type) {
          case MetricType::kCounter:
            m.count = e->counter->value();
            break;
          case MetricType::kGauge:
            m.level = e->gauge->value();
            break;
          case MetricType::kHistogram: {
            const stats::Summary s = e->histogram->summarize();
            m.count = s.count();
            if (s.count() != 0) {
                const stats::LogHistogram h = e->histogram->merged();
                m.sum = s.sum();
                m.mean = s.mean();
                m.min = s.min();
                m.max = s.max();
                m.p50 = h.quantile(0.5);
                m.p95 = h.quantile(0.95);
                m.p99 = h.quantile(0.99);
            }
            break;
          }
        }
        out.push_back(std::move(m));
    }
    return out;
}

void
Registry::resetValues()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto &e : entries_) {
        if (e->counter)
            e->counter->reset();
        if (e->gauge)
            e->gauge->reset();
        if (e->histogram)
            e->histogram->reset();
    }
}

Counter &
counter(const std::string &name, const std::string &unit,
        const std::string &subsystem, const std::string &help)
{
    return Registry::instance().counter(name, unit, subsystem, help);
}

Gauge &
gauge(const std::string &name, const std::string &unit,
      const std::string &subsystem, const std::string &help)
{
    return Registry::instance().gauge(name, unit, subsystem, help);
}

Histogram &
histogram(const std::string &name, const std::string &unit,
          const std::string &subsystem, const std::string &help,
          double lo, double hi, std::size_t bins_per_decade)
{
    return Registry::instance().histogram(name, unit, subsystem, help,
                                          lo, hi, bins_per_decade);
}

void
resetAll()
{
    Registry::instance().resetValues();
    resetSpans();
}

} // namespace obs
} // namespace dlw
