/**
 * @file
 * Unit tests for stats/acf.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/acf.hh"

namespace dlw
{
namespace stats
{
namespace
{

TEST(Acf, LagZeroIsOne)
{
    std::vector<double> xs = {1.0, 3.0, 2.0, 5.0, 4.0};
    auto acf = autocorrelation(xs, 2);
    ASSERT_EQ(acf.size(), 3u);
    EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(Acf, IidIsNearZero)
{
    Rng rng(1);
    std::vector<double> xs;
    for (int i = 0; i < 50000; ++i)
        xs.push_back(rng.normal(0.0, 1.0));
    auto acf = autocorrelation(xs, 10);
    for (std::size_t k = 1; k <= 10; ++k)
        EXPECT_NEAR(acf[k], 0.0, 0.02) << "lag " << k;
}

TEST(Acf, Ar1HasGeometricDecay)
{
    // x_t = 0.8 x_{t-1} + e_t has acf(k) ~ 0.8^k.
    Rng rng(2);
    std::vector<double> xs;
    double x = 0.0;
    for (int i = 0; i < 100000; ++i) {
        x = 0.8 * x + rng.normal(0.0, 1.0);
        xs.push_back(x);
    }
    auto acf = autocorrelation(xs, 5);
    EXPECT_NEAR(acf[1], 0.8, 0.03);
    EXPECT_NEAR(acf[2], 0.64, 0.04);
    EXPECT_NEAR(acf[3], 0.512, 0.05);
}

TEST(Acf, AlternatingSeriesIsNegative)
{
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i)
        xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
    auto acf = autocorrelation(xs, 2);
    EXPECT_NEAR(acf[1], -1.0, 0.01);
    EXPECT_NEAR(acf[2], 1.0, 0.01);
}

TEST(Acf, ConstantSeriesIsAllZero)
{
    std::vector<double> xs(100, 5.0);
    auto acf = autocorrelation(xs, 5);
    for (double v : acf)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Acf, MaxLagClamped)
{
    std::vector<double> xs = {1.0, 2.0, 3.0};
    auto acf = autocorrelation(xs, 100);
    EXPECT_EQ(acf.size(), 3u); // lags 0..2
}

TEST(DecorrelationLag, FindsFirstDrop)
{
    std::vector<double> acf = {1.0, 0.8, 0.5, 0.05, 0.2};
    EXPECT_EQ(decorrelationLag(acf, 0.1), 3u);
}

TEST(DecorrelationLag, NeverDropsReturnsSize)
{
    std::vector<double> acf = {1.0, 0.9, 0.8};
    EXPECT_EQ(decorrelationLag(acf, 0.1), 3u);
}

TEST(AcfDeathTest, TooFewSamples)
{
    std::vector<double> xs = {1.0};
    EXPECT_DEATH(autocorrelation(xs, 1), ">= 2");
}

TEST(DominantPeriod, RecoversSinusoidPeriod)
{
    Rng rng(7);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) {
        xs.push_back(10.0 + 5.0 * std::sin(2.0 * M_PI * i / 24.0) +
                     rng.normal(0.0, 1.0));
    }
    auto p = dominantPeriod(xs, 2, 100);
    EXPECT_EQ(p.period, 24u);
    EXPECT_GT(p.strength, 0.5);
}

TEST(DominantPeriod, WeeklyCycleAtLongerLags)
{
    Rng rng(8);
    std::vector<double> xs;
    for (int i = 0; i < 2000; ++i) {
        double v = 10.0 + 4.0 * std::sin(2.0 * M_PI * i / 24.0);
        if ((i / 24) % 7 >= 5)
            v *= 0.3; // weekend damping
        xs.push_back(v + rng.normal(0.0, 0.5));
    }
    // Restricting the search beyond a day finds the weekly beat.
    auto p = dominantPeriod(xs, 48, 400);
    EXPECT_EQ(p.period % 168, 0u);
}

TEST(DominantPeriod, NoiseHasNoStrongPeak)
{
    Rng rng(9);
    std::vector<double> xs;
    for (int i = 0; i < 2000; ++i)
        xs.push_back(rng.normal(0.0, 1.0));
    auto p = dominantPeriod(xs, 2, 200);
    EXPECT_LT(p.strength, 0.1);
}

TEST(DominantPeriodDeathTest, BadRanges)
{
    std::vector<double> xs(100, 1.0);
    EXPECT_DEATH(dominantPeriod(xs, 1, 10), ">= 2");
    EXPECT_DEATH(dominantPeriod(xs, 10, 5), "inverted");
    EXPECT_DEATH(dominantPeriod(xs, 2, 60), "too short");
}

} // anonymous namespace
} // namespace stats
} // namespace dlw
