/**
 * @file
 * Tests for the RAID array simulation.
 */

#include <gtest/gtest.h>

#include "array/array.hh"
#include "common/rng.hh"
#include "synth/workload.hh"

namespace dlw
{
namespace array
{
namespace
{

disk::DriveConfig
memberDrive()
{
    return disk::DriveConfig::makeEnterprise();
}

RaidConfig
cfg(RaidLevel level, std::uint32_t disks)
{
    RaidConfig c;
    c.level = level;
    c.disks = disks;
    c.stripe_blocks = 128;
    return c;
}

trace::MsTrace
logicalTrace(const RaidArray &arr, double rate, Tick window,
             std::uint64_t seed)
{
    Rng rng(seed);
    synth::Workload w =
        synth::Workload::makeOltp(arr.logicalCapacity(), rate, seed);
    return w.generate(rng, "array", 0, window);
}

TEST(Array, AllLogicalRequestsComplete)
{
    RaidArray arr(cfg(RaidLevel::Raid0, 4), memberDrive());
    trace::MsTrace tr = logicalTrace(arr, 100.0, 20 * kSec, 1);
    ArrayLog log = arr.service(tr);
    ASSERT_EQ(log.logical_response.size(), tr.size());
    for (Tick r : log.logical_response)
        EXPECT_GT(r, 0);
    EXPECT_EQ(log.disk_traces.size(), 4u);
    EXPECT_EQ(log.disk_logs.size(), 4u);
}

TEST(Array, Raid0SpreadsLoadEvenly)
{
    RaidArray arr(cfg(RaidLevel::Raid0, 4), memberDrive());
    trace::MsTrace tr = logicalTrace(arr, 200.0, 30 * kSec, 2);
    ArrayLog log = arr.service(tr);
    std::size_t lo = SIZE_MAX, hi = 0;
    for (const auto &t : log.disk_traces) {
        lo = std::min(lo, t.size());
        hi = std::max(hi, t.size());
    }
    EXPECT_GT(lo, 0u);
    // Even split within 25%.
    EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 1.25);
}

TEST(Array, Raid0FanoutIsOneForSmallRequests)
{
    RaidArray arr(cfg(RaidLevel::Raid0, 4), memberDrive());
    trace::MsTrace tr = logicalTrace(arr, 80.0, 10 * kSec, 3);
    ArrayLog log = arr.service(tr);
    // OLTP requests (8 blocks) never straddle a 128-block stripe
    // unless unaligned: fanout stays close to 1.
    EXPECT_LT(log.fanout(tr.size()), 1.2);
}

TEST(Array, Raid1WriteFanout)
{
    RaidArray arr(cfg(RaidLevel::Raid1, 2), memberDrive());
    trace::MsTrace tr("t", 0, kSec);
    for (int i = 0; i < 100; ++i) {
        trace::Request r;
        r.arrival = static_cast<Tick>(i) * kMsec;
        r.lba = static_cast<Lba>(i) * 8;
        r.blocks = 8;
        r.op = trace::Op::Write;
        tr.append(r);
    }
    ArrayLog log = arr.service(tr);
    EXPECT_DOUBLE_EQ(log.fanout(tr.size()), 2.0);
    EXPECT_EQ(log.disk_traces[0].size(), 100u);
    EXPECT_EQ(log.disk_traces[1].size(), 100u);
}

TEST(Array, Raid5WriteAmplification)
{
    RaidArray r5(cfg(RaidLevel::Raid5, 5), memberDrive());
    RaidArray r0(cfg(RaidLevel::Raid0, 5), memberDrive());

    trace::MsTrace tr("t", 0, 10 * kSec);
    Rng rng(4);
    for (int i = 0; i < 500; ++i) {
        trace::Request r;
        r.arrival = static_cast<Tick>(i) * 20 * kMsec;
        r.lba = static_cast<Lba>(rng.uniformInt(0, 1 << 20)) * 8;
        r.blocks = 8;
        r.op = trace::Op::Write;
        tr.append(r);
    }
    ArrayLog l5 = r5.service(tr);
    ArrayLog l0 = r0.service(tr);
    // RAID-5 small writes quadruple disk requests; RAID-0 does not.
    EXPECT_DOUBLE_EQ(l5.fanout(tr.size()), 4.0);
    EXPECT_DOUBLE_EQ(l0.fanout(tr.size()), 1.0);
    // And the member disks work correspondingly harder.
    EXPECT_GT(l5.meanDiskUtilization(),
              l0.meanDiskUtilization() * 1.5);
}

TEST(Array, LogicalResponseIsMaxOfFragments)
{
    // One large striped read: the logical response must be at least
    // every member completion's response.
    RaidArray arr(cfg(RaidLevel::Raid0, 4), memberDrive());
    trace::MsTrace tr("t", 0, kSec);
    trace::Request r;
    r.arrival = 0;
    r.lba = 0;
    r.blocks = 512; // 4 stripes -> all 4 disks
    r.op = trace::Op::Read;
    tr.append(r);
    ArrayLog log = arr.service(tr);
    ASSERT_EQ(log.logical_response.size(), 1u);
    for (const auto &dl : log.disk_logs) {
        for (const auto &c : dl.completions)
            EXPECT_GE(log.logical_response[0], c.response());
    }
}

TEST(Array, MemberTracesAreValid)
{
    RaidArray arr(cfg(RaidLevel::Raid5, 4), memberDrive());
    trace::MsTrace tr = logicalTrace(arr, 60.0, 10 * kSec, 5);
    ArrayLog log = arr.service(tr);
    for (const auto &t : log.disk_traces)
        EXPECT_TRUE(t.validate()) << t.driveId();
}

TEST(ArrayDeathTest, RequestBeyondLogicalCapacity)
{
    RaidArray arr(cfg(RaidLevel::Raid1, 2), memberDrive());
    trace::MsTrace tr("t", 0, kSec);
    trace::Request r;
    r.arrival = 0;
    r.lba = arr.logicalCapacity();
    r.blocks = 8;
    r.op = trace::Op::Read;
    tr.append(r);
    EXPECT_DEATH(arr.service(tr), "beyond array logical capacity");
}

} // anonymous namespace
} // namespace array
} // namespace dlw
