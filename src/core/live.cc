#include "core/live.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace dlw
{
namespace core
{

namespace
{

/**
 * Metadata-only RequestSource: exists so the accumulators' begin()
 * hook sees the stream header exactly as a pulled pass would show
 * it.  next() is never called.
 */
class MetaSource final : public trace::RequestSource
{
  public:
    explicit MetaSource(const trace::MsStreamHeader &m) : m_(m) {}

    const std::string &driveId() const override { return m_.drive_id; }

    Tick start() const override { return m_.start; }

    Tick duration() const override { return m_.duration; }

    bool next(trace::RequestBatch &) override { return false; }

  private:
    trace::MsStreamHeader m_;
};

/** JSON number: finite values via %.12g, everything else null. */
void
jsonNum(std::ostringstream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os << buf;
}

void
jsonField(std::ostringstream &os, bool &first, const char *key,
          double v)
{
    os << (first ? "" : ",") << '"' << key << "\":";
    jsonNum(os, v);
    first = false;
}

void
jsonField(std::ostringstream &os, bool &first, const char *key,
          std::uint64_t v)
{
    os << (first ? "" : ",") << '"' << key << "\":" << v;
    first = false;
}

/** Escape the characters JSON strings cannot carry verbatim. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // anonymous namespace

LiveCharacterization::LiveCharacterization(trace::MsStreamHeader meta)
    : meta_(std::move(meta)), prev_(meta_.start)
{
    MetaSource src(meta_);
    burstiness_.begin(src);
    rwmix_.begin(src);
    totals_.begin(src);
}

Status
LiveCharacterization::observe(const trace::RequestBatch &batch)
{
    const Tick end = meta_.start + meta_.duration;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Tick at = batch.arrival(i);
        std::ostringstream os;
        if (batch.blocks(i) == 0) {
            os << "zero-length request at stream offset " << n_ + i;
        } else if (at < prev_) {
            os << "out-of-order arrival at stream offset " << n_ + i
               << " (" << at << " after " << prev_ << ")";
        } else if (at >= end) {
            os << "arrival outside the observation window at stream"
                  " offset "
               << n_ + i;
        } else {
            prev_ = at;
            continue;
        }
        return Status::invalidArgument(os.str());
    }
    burstiness_.observe(batch);
    rwmix_.observe(batch);
    totals_.observe(batch);
    n_ += batch.size();
    return Status();
}

DriveCharacterization
LiveCharacterization::assemble(const BurstinessAccumulator &b,
                               const RwMixAccumulator &rw,
                               const TraceTotalsAccumulator &t) const
{
    DriveCharacterization c;
    c.drive_id = meta_.drive_id;
    c.ms_burstiness = b.report();
    c.ms_rw = rw.report();
    c.arrival_rate = t.arrivalRate();
    c.read_fraction = t.readFraction();
    return c;
}

DriveCharacterization
LiveCharacterization::snapshot() const
{
    // Copies absorb the finish(); the live accumulators never see it.
    BurstinessAccumulator b = burstiness_;
    RwMixAccumulator rw = rwmix_;
    TraceTotalsAccumulator t = totals_;
    b.finish();
    rw.finish();
    t.finish();
    return assemble(b, rw, t);
}

void
LiveCharacterization::saveState(BinEnc &enc) const
{
    enc.str(meta_.drive_id);
    enc.i64(meta_.start);
    enc.i64(meta_.duration);
    burstiness_.saveState(enc);
    rwmix_.saveState(enc);
    totals_.saveState(enc);
    enc.u64(n_);
    enc.i64(prev_);
}

std::unique_ptr<LiveCharacterization>
LiveCharacterization::restore(BinDec &dec)
{
    trace::MsStreamHeader meta;
    meta.drive_id = dec.str();
    meta.start = dec.i64();
    meta.duration = dec.i64();
    if (!dec.ok())
        return nullptr;
    auto live = std::make_unique<LiveCharacterization>(meta);
    if (!live->burstiness_.loadState(dec) ||
        !live->rwmix_.loadState(dec) || !live->totals_.loadState(dec))
        return nullptr;
    live->n_ = dec.u64();
    live->prev_ = dec.i64();
    if (!dec.ok())
        return nullptr;
    return live;
}

DriveCharacterization
LiveCharacterization::finish()
{
    if (!finished_) {
        finished_ = true;
        burstiness_.finish();
        rwmix_.finish();
        totals_.finish();
    }
    return assemble(burstiness_, rwmix_, totals_);
}

std::string
renderCharacterizationJson(const DriveCharacterization &c)
{
    std::ostringstream os;
    bool first = true;
    os << '{';
    os << "\"drive\":\"" << jsonEscape(c.drive_id) << '"';
    first = false;
    if (c.arrival_rate)
        jsonField(os, first, "arrival_rate", *c.arrival_rate);
    if (c.read_fraction)
        jsonField(os, first, "read_fraction", *c.read_fraction);
    if (c.mean_response_ms)
        jsonField(os, first, "mean_response_ms", *c.mean_response_ms);
    if (c.idle_fraction)
        jsonField(os, first, "idle_fraction", *c.idle_fraction);
    if (c.ms_burstiness) {
        const BurstinessReport &b = *c.ms_burstiness;
        jsonField(os, first, "interarrival_cv", b.interarrival_cv);
        jsonField(os, first, "peak_to_mean", b.peak_to_mean);
        jsonField(os, first, "hurst_var", b.hurst_var.h);
        jsonField(os, first, "hurst_rs", b.hurst_rs.h);
        if (!b.idc.empty()) {
            jsonField(os, first, "idc_finest", b.idc.front().idc);
            jsonField(os, first, "idc_coarsest", b.idc.back().idc);
        }
        jsonField(os, first, "decorrelation_lag",
                  static_cast<std::uint64_t>(b.decorrelation_lag));
    }
    if (c.ms_rw) {
        const RwDynamics &d = *c.ms_rw;
        jsonField(os, first, "mean_run_length", d.mean_run_length);
        jsonField(os, first, "write_dominated_fraction",
                  d.write_dominated_fraction);
        jsonField(os, first, "longest_write_run",
                  static_cast<std::uint64_t>(d.longest_write_run));
        jsonField(os, first, "write_bursts",
                  static_cast<std::uint64_t>(d.write_bursts));
    }
    os << '}';
    return os.str();
}

} // namespace core
} // namespace dlw
