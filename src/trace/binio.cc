#include "trace/binio.hh"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/fault.hh"
#include "obs/span.hh"

namespace dlw
{
namespace trace
{

namespace
{

constexpr std::array<char, 8> kMagic =
    {'D', 'L', 'W', 'M', 'S', '1', '\0', '\0'};

/** On-disk request record, explicitly padded to 24 bytes. */
struct RawRecord
{
    std::int64_t arrival;
    std::uint64_t lba;
    std::uint32_t blocks;
    std::uint8_t op;
    std::uint8_t pad[3];
};
static_assert(sizeof(RawRecord) == 24, "raw record layout changed");

template <typename T>
void
writeRaw(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readRaw(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return static_cast<bool>(is);
}

} // anonymous namespace

void
writeMsBinary(std::ostream &os, const MsTrace &trace)
{
    os.write(kMagic.data(), kMagic.size());
    auto id_len = static_cast<std::uint32_t>(trace.driveId().size());
    writeRaw(os, id_len);
    os.write(trace.driveId().data(), id_len);
    writeRaw(os, trace.start());
    writeRaw(os, trace.duration());
    auto count = static_cast<std::uint64_t>(trace.size());
    writeRaw(os, count);

    for (const Request &r : trace.requests()) {
        RawRecord raw{};
        raw.arrival = r.arrival;
        raw.lba = r.lba;
        raw.blocks = r.blocks;
        raw.op = static_cast<std::uint8_t>(r.op);
        writeRaw(os, raw);
    }
    if (!os) {
        throw StatusError(
            Status::ioError("I/O error while writing binary trace"));
    }
}

void
writeMsBinary(const std::string &path, const MsTrace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        throw StatusError(Status::ioError("cannot open '" + path +
                                          "' for writing"));
    }
    writeMsBinary(os, trace);
}

StatusOr<MsTrace>
readMsBinary(std::istream &is, const IngestOptions &opts,
             IngestStats *stats)
{
    IngestStats st;
    IngestMetricsScope obs_scope(st);
    auto finish = [&](StatusOr<MsTrace> r) {
        if (stats)
            *stats = st;
        return r;
    };

    // The header is not policy-recoverable: without a trustworthy
    // record count and id there is nothing to resynchronize on.
    std::array<char, 8> magic{};
    is.read(magic.data(), magic.size());
    if (!is || magic != kMagic) {
        return finish(Status::corruptData(
            "not a dlw binary ms trace (bad magic)"));
    }

    std::uint32_t id_len = 0;
    if (!readRaw(is, id_len)) {
        return finish(Status::truncated(
            "truncated binary trace while reading id length"));
    }
    if (id_len > 4096) {
        std::ostringstream os;
        os << "implausible drive-id length " << id_len;
        return finish(Status::corruptData(os.str()));
    }
    std::string id(id_len, '\0');
    is.read(id.data(), id_len);
    if (!is) {
        return finish(Status::truncated(
            "truncated binary trace while reading drive id"));
    }

    Tick start = 0, duration = 0;
    std::uint64_t count = 0;
    if (!readRaw(is, start) || !readRaw(is, duration) ||
        !readRaw(is, count)) {
        return finish(Status::truncated(
            "truncated binary trace while reading header"));
    }
    if (duration < 0) {
        return finish(
            Status::corruptData("negative duration in binary header"));
    }

    const bool clamp = opts.policy == RecordPolicy::kBestEffortClamp;
    MsTrace trace(id, start, duration);
    for (std::uint64_t i = 0; i < count; ++i) {
        RawRecord raw{};
        if (!readRaw(is, raw)) {
            std::ostringstream os;
            os << "truncated binary trace at record " << i << " of "
               << count;
            st.noteError(os.str(), opts.max_error_samples);
            if (opts.policy == RecordPolicy::kAbort)
                return finish(Status::truncated(os.str()));
            // Keep the prefix: everything before the cut is intact.
            st.records_skipped += count - i;
            break;
        }

        std::string why;
        bool was_clamped = false;
        if (FAULT_POINT("trace.read.record")) {
            std::ostringstream os;
            os << "injected fault at trace.read.record (record " << i
               << ")";
            why = os.str();
        } else if (raw.op > 1) {
            std::ostringstream os;
            os << "bad op byte at record " << i;
            why = os.str();
            if (clamp) {
                raw.op &= 1;
                was_clamped = true;
            }
        } else if (raw.blocks == 0) {
            std::ostringstream os;
            os << "zero-length request at record " << i;
            why = os.str();
            if (clamp) {
                raw.blocks = 1;
                was_clamped = true;
            }
        }

        if (!why.empty()) {
            st.noteError(why, opts.max_error_samples);
            if (opts.policy == RecordPolicy::kAbort)
                return finish(Status::corruptData(why));
            if (!was_clamped) {
                ++st.records_skipped;
                continue;
            }
            ++st.records_clamped;
        }

        Request r;
        r.arrival = raw.arrival;
        r.lba = raw.lba;
        r.blocks = raw.blocks;
        r.op = static_cast<Op>(raw.op);
        trace.append(r);
        ++st.records_read;
        st.bytes_read += sizeof(RawRecord);
        if (st.errors != 0)
            st.bytes_recovered += sizeof(RawRecord);
    }
    if (stats)
        *stats = st;
    return trace;
}

StatusOr<MsTrace>
readMsBinary(const std::string &path, const IngestOptions &opts,
             IngestStats *stats)
{
    std::ifstream is;
    {
        obs::ScopedSpan span("ingest.open");
        if (FAULT_POINT("trace.open")) {
            return Status::ioError(
                "injected fault at trace.open on '" + path + "'");
        }
        is.open(path, std::ios::binary);
    }
    if (!is) {
        return Status::ioError("cannot open '" + path +
                               "' for reading");
    }
    StatusOr<MsTrace> r = readMsBinary(is, opts, stats);
    if (!r.ok()) {
        Status e = r.status();
        return e.withContext("reading '" + path + "'");
    }
    return r;
}

MsTrace
readMsBinary(std::istream &is)
{
    return readMsBinary(is, IngestOptions{}).valueOrThrow();
}

MsTrace
readMsBinary(const std::string &path)
{
    return readMsBinary(path, IngestOptions{}).valueOrThrow();
}

} // namespace trace
} // namespace dlw
