/**
 * @file
 * Idle-time background-work scheduling (media scrubbing).
 *
 * The operational payoff of the paper's idleness findings: long idle
 * stretches can host background media scans without hurting the
 * foreground.  This scheduler replays a drive's busy/idle structure
 * and issues fixed-duration scrub chunks during idleness, in two
 * modes:
 *
 *  - online: a realistic controller that starts a chunk after the
 *    drive has been idle for idle_wait; a chunk caught in flight
 *    when foreground work arrives delays that work by the chunk's
 *    remaining time (chunks are non-preemptible).
 *  - oracle: an offline bound that knows every gap's length and only
 *    starts chunks that fit, so the foreground is never delayed.
 *
 * The gap between the two quantifies what idleness *prediction*
 * would be worth — one of the design questions this kind of trace
 * analysis feeds.
 */

#ifndef DLW_CORE_BGWORK_HH
#define DLW_CORE_BGWORK_HH

#include "disk/drive.hh"

namespace dlw
{
namespace core
{

/**
 * Scrub policy knobs.
 */
struct ScrubConfig
{
    /** Idle time before the first chunk of a gap starts. */
    Tick idle_wait = 500 * kMsec;
    /** Duration of one non-preemptible scrub chunk. */
    Tick chunk_time = 50 * kMsec;
    /** Media blocks covered per chunk. */
    BlockCount chunk_blocks = 4096;
    /** Oracle mode: never overrun a gap (offline upper bound). */
    bool oracle = false;
};

/**
 * Outcome of a scrub replay.
 */
struct ScrubReport
{
    /** Chunks executed. */
    std::uint64_t chunks = 0;
    /** Blocks scrubbed. */
    std::uint64_t blocks = 0;
    /** Total time spent scrubbing. */
    Tick scrub_time = 0;
    /** Foreground requests delayed by an in-flight chunk. */
    std::uint64_t delayed_periods = 0;
    /** Total foreground delay injected. */
    Tick total_delay = 0;
    /** Largest single delay. */
    Tick max_delay = 0;

    /** Fraction of the window spent scrubbing. */
    double scrubFraction(Tick window) const;

    /**
     * Projected time to cover a full drive at this rate.
     *
     * @param capacity Drive capacity in blocks.
     * @param window   Observation window the report covers.
     * @return Estimated full-scan time (kTickNone when no progress).
     */
    Tick projectedFullScan(Lba capacity, Tick window) const;
};

/**
 * Replay a service log's idle structure under a scrub policy.
 *
 * Foreground busy intervals are taken as fixed; injected delays are
 * accounted but do not shift subsequent foreground work (a
 * first-order model, exact when delays are rare — which is the
 * operating point any sane policy targets).
 *
 * @param log    Foreground activity.
 * @param config Scrub policy.
 * @return Scrub progress and foreground-impact accounting.
 */
ScrubReport scheduleScrub(const disk::ServiceLog &log,
                          const ScrubConfig &config);

} // namespace core
} // namespace dlw

#endif // DLW_CORE_BGWORK_HH
