/**
 * @file
 * Recoverable error model for library code.
 *
 * Library paths that can fail on *input* (corrupt trace files,
 * truncated streams, injected faults, failed fleet shards) return a
 * Status or StatusOr<T> instead of calling dlw_fatal: the caller —
 * not the library — decides whether a malformed record aborts the
 * run, is skipped, or is clamped, and a CLI boundary converts the
 * final Status into an exit code.  dlw_panic/dlw_assert remain the
 * tool for broken internal invariants; Status is for the outside
 * world misbehaving.
 *
 * A Status carries a coarse code, a message, and a context chain:
 * each layer that propagates an error can prepend where it was
 * ("reading 'fleet-3.bin'", "shard 17") so the final rendering reads
 * outermost-first like a call path.
 */

#ifndef DLW_COMMON_STATUS_HH
#define DLW_COMMON_STATUS_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace dlw
{

/** Coarse error taxonomy; see DESIGN.md "Failure model". */
enum class StatusCode
{
    kOk = 0,
    /** Caller passed something unusable (bad policy name, bad spec). */
    kInvalidArgument,
    /** A named resource (file, fault point) does not exist. */
    kNotFound,
    /** Input data violates its format's invariants. */
    kCorruptData,
    /** Input ended before the format said it would. */
    kTruncated,
    /** The operating system failed an I/O operation. */
    kIoError,
    /** A stated precondition of the operation does not hold. */
    kFailedPrecondition,
    /** Transient failure; retrying may succeed (fleet shards). */
    kUnavailable,
    /** A dlw bug surfaced as a recoverable error. */
    kInternal,
};

/** Human-readable code name ("CorruptData"). */
const char *statusCodeName(StatusCode code);

/**
 * Result of an operation that may fail recoverably.
 */
class Status
{
  public:
    /** Success. */
    Status() = default;

    /** Failure with a code and message; code must not be kOk. */
    Status(StatusCode code, std::string message);

    static Status invalidArgument(std::string msg);
    static Status notFound(std::string msg);
    static Status corruptData(std::string msg);
    static Status truncated(std::string msg);
    static Status ioError(std::string msg);
    static Status failedPrecondition(std::string msg);
    static Status unavailable(std::string msg);
    static Status internal(std::string msg);

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /**
     * Prepend one frame to the context chain.
     *
     * Called while an error propagates outward, so later frames are
     * more "outer"; toString() renders them outermost-first.
     *
     * @param frame Where the error passed through.
     * @return *this, for chaining on the return path.
     */
    Status &withContext(std::string frame);

    /** Outermost-first context frames. */
    const std::vector<std::string> &context() const { return context_; }

    /** "[CorruptData] reading 'x.csv': line 7: bad op 'Q'". */
    std::string toString() const;

    bool
    operator==(const Status &o) const
    {
        return code_ == o.code_ && message_ == o.message_ &&
               context_ == o.context_;
    }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
    std::vector<std::string> context_; ///< outermost first
};

/**
 * A Status crossing a boundary that can only signal by throwing
 * (thread-pool tasks, legacy void/value-returning APIs).
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()),
          status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }

  private:
    Status status_;
};

/**
 * Either a value or the Status explaining its absence.
 */
template <typename T>
class StatusOr
{
  public:
    /** Failure; the status must not be kOk. */
    StatusOr(Status status) : status_(std::move(status))
    {
        dlw_assert(!status_.ok(),
                   "StatusOr built from an OK status without a value");
    }

    /** Success. */
    StatusOr(T value) : value_(std::move(value)) {}

    bool ok() const { return value_.has_value(); }

    /** The error (or OK when a value is present). */
    const Status &status() const { return status_; }

    const T &
    value() const &
    {
        dlw_assert(value_.has_value(),
                   "value() on a failed StatusOr: ", status_.toString());
        return *value_;
    }

    T &
    value() &
    {
        dlw_assert(value_.has_value(),
                   "value() on a failed StatusOr: ", status_.toString());
        return *value_;
    }

    /** Move the value out (e.g. `auto t = std::move(r).value()`). */
    T &&
    value() &&
    {
        dlw_assert(value_.has_value(),
                   "value() on a failed StatusOr: ", status_.toString());
        return std::move(*value_);
    }

    /** Value, or throw StatusError at a boundary that must throw. */
    T &&
    valueOrThrow() &&
    {
        if (!value_.has_value())
            throw StatusError(status_);
        return std::move(*value_);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace dlw

#endif // DLW_COMMON_STATUS_HH
