/**
 * @file
 * Deterministic fault injection for tests and torture harnesses.
 *
 * Library code marks its interesting failure sites with a named
 * fault point:
 *
 *     if (FAULT_POINT("trace.read.record"))
 *         ...treat this record as corrupt...
 *
 *     if (FAULT_POINT_KEYED("fleet.shard", drive_index))
 *         ...fail this shard...
 *
 * Nothing fires unless a test (or `dlwtool --fault`) arms the point.
 * Disarmed cost is one relaxed atomic load — the macros short-circuit
 * before touching the registry — so fault points are safe to leave in
 * hot loops.
 *
 * Arming modes, all deterministic:
 *
 *   nth=N   fire on every Nth evaluation of the point (point-local
 *           counter; deterministic in serial code, ordering-dependent
 *           under concurrency — prefer mod= for parallel paths)
 *   mod=N   fire when the caller-supplied key satisfies key % N == 0
 *           (pure function of the key: byte-identical at any thread
 *           count; keyless evaluations fall back to the counter)
 *   p=P     fire with probability P, hashed from (seed, point, key or
 *           counter); seed=S optional, default 0
 *   once    fire on the first evaluation only
 *
 * Spec strings arm several points at once:
 *   "trace.read.record:nth=3;fleet.shard:mod=8"
 */

#ifndef DLW_COMMON_FAULT_HH
#define DLW_COMMON_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"

namespace dlw
{
namespace fault
{

/** How an armed point decides to fire. */
enum class Mode
{
    EveryNth,
    KeyMod,
    Probability,
    Once,
};

/** One point's arming. */
struct FaultSpec
{
    Mode mode = Mode::Once;
    std::uint64_t n = 1;      ///< EveryNth period / KeyMod modulus
    double p = 0.0;           ///< Probability of firing
    std::uint64_t seed = 0;   ///< Probability hash seed
};

/** Arm one point (re-arming replaces the old spec and counters). */
void arm(const std::string &point, const FaultSpec &spec);

/**
 * Arm points from a spec string
 * ("point:nth=3;other:mod=8;third:p=0.1,seed=7;fourth:once").
 *
 * @return kInvalidArgument naming the bad clause on a parse error;
 *         nothing is armed unless the whole spec parses.
 */
Status armFromSpec(const std::string &spec);

/** Disarm one point (unknown names are a no-op). */
void disarm(const std::string &point);

/** Disarm everything and reset all counters. */
void disarmAll();

/** True when at least one point is armed (lock-free). */
bool anyArmed();

/** Number of times the point has fired since it was armed. */
std::uint64_t fireCount(const std::string &point);

namespace detail
{

extern std::atomic<int> g_armed_points;

/** Registry lookup + mode evaluation; called only while armed. */
bool evaluate(const char *point, std::uint64_t key, bool keyed);

} // namespace detail

/**
 * RAII arming for tests: arms on construction, restores a fully
 * disarmed registry on destruction.
 */
class ScopedFault
{
  public:
    ScopedFault(const std::string &point, const FaultSpec &spec)
    {
        arm(point, spec);
    }

    explicit ScopedFault(const std::string &spec)
    {
        Status s = armFromSpec(spec);
        dlw_assert(s.ok(), "bad ScopedFault spec: ", s.toString());
    }

    ~ScopedFault() { disarmAll(); }

    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;
};

} // namespace fault
} // namespace dlw

/** True when the named point should inject a failure here. */
#define FAULT_POINT(point) \
    (::dlw::fault::detail::g_armed_points.load( \
         std::memory_order_relaxed) != 0 && \
     ::dlw::fault::detail::evaluate((point), 0, false))

/** Keyed variant: deterministic per key regardless of thread count. */
#define FAULT_POINT_KEYED(point, key) \
    (::dlw::fault::detail::g_armed_points.load( \
         std::memory_order_relaxed) != 0 && \
     ::dlw::fault::detail::evaluate((point), (key), true))

#endif // DLW_COMMON_FAULT_HH
