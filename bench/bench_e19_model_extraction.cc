/**
 * @file
 * E19 (extension) — model extraction and regeneration fidelity.
 *
 * For every drive of the Millisecond set: extract the parametric
 * workload model, regenerate a synthetic twin, service both through
 * the same drive, and compare the statistics a storage architect
 * would size against.  This is the "usable output" of a
 * characterization study: a compact model that reproduces the
 * trace's behaviour.
 */

#include <iostream>

#include "benchutil.hh"
#include "core/report.hh"
#include "stats/summary.hh"
#include "synth/extract.hh"

#include "obs/export.hh"

using namespace dlw;

namespace
{

double
gapCv(const trace::MsTrace &tr)
{
    stats::Summary s;
    for (double g : tr.interarrivals())
        s.add(g);
    return s.cv();
}

} // anonymous namespace

int
main()
{
    obs::BenchReportGuard obs_guard("e19_model_extraction");
    std::cout << "E19: extract -> regenerate -> compare\n\n";

    const disk::DriveConfig cfg = disk::DriveConfig::makeEnterprise();
    const Lba cap = cfg.geometry.capacityBlocks();
    auto ms = bench::makeStandardMsSet();

    core::Table t("original vs regenerated (o = original, r = twin)",
                  {"drive", "req/s o", "req/s r", "read% o", "read% r",
                   "CV o", "CV r", "util% o", "util% r"});

    for (const auto &d : ms) {
        synth::ExtractedModel m = synth::extractModel(d.tr, cap);
        synth::Workload regen = m.build();
        Rng rng(bench::kSeed + 19);
        trace::MsTrace twin =
            regen.generate(rng, d.name + "-twin", 0, bench::kMsWindow);
        disk::ServiceLog twin_log =
            disk::DiskDrive(cfg).service(twin);

        t.addRow({d.name, core::cell(d.tr.arrivalRate()),
                  core::cell(twin.arrivalRate()),
                  core::cell(100.0 * d.tr.readFraction()),
                  core::cell(100.0 * twin.readFraction()),
                  core::cell(gapCv(d.tr)), core::cell(gapCv(twin)),
                  core::cell(100.0 * d.log.utilization()),
                  core::cell(100.0 * twin_log.utilization())});
    }
    t.print(std::cout);

    std::cout << "\nExtracted models:\n";
    for (const auto &d : ms) {
        synth::ExtractedModel m = synth::extractModel(d.tr, cap);
        std::cout << "  " << d.name << ": " << m.describe() << '\n';
    }

    std::cout << "\nShape check: rates, mixes, and burstiness class "
                 "carry over; utilization of the twin tracks the "
                 "original within the fidelity the extracted "
                 "features can express (spatial skew is not "
                 "extracted, so seek-bound twins can differ).\n";
    return 0;
}
