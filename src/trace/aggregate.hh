/**
 * @file
 * Cross-scale aggregation: Millisecond -> Hour -> Lifetime.
 *
 * The paper's methodology hinges on the same activity being visible
 * at three granularities.  These functions derive each coarser trace
 * from the finer one, so the cross-scale consistency experiment
 * (E13) can verify that nothing is lost except resolution.
 *
 * Busy time is not a property of the request stream alone — it
 * depends on how the drive serviced it — so the ms->hour conversion
 * optionally accepts the busy intervals produced by the disk model.
 */

#ifndef DLW_TRACE_AGGREGATE_HH
#define DLW_TRACE_AGGREGATE_HH

#include <utility>
#include <vector>

#include "trace/hourtrace.hh"
#include "trace/lifetime.hh"
#include "trace/mstrace.hh"

namespace dlw
{
namespace trace
{

/** Half-open interval [begin, end) during which the drive was busy. */
using BusyInterval = std::pair<Tick, Tick>;

/**
 * Aggregate a per-request trace into hourly counters.
 *
 * The hour grid is anchored at the trace's start tick; the final
 * partial hour is kept.
 *
 * @param ms   Source trace (arrivals must be sorted).
 * @param busy Optional busy intervals from a disk-model run; when
 *             present they are folded into per-hour busy time.
 * @return Hour trace covering the full observation window.
 */
HourTrace msToHour(const MsTrace &ms,
                   const std::vector<BusyInterval> &busy = {});

/**
 * Collapse an hour trace into one lifetime record.
 *
 * @param hour                Source hour trace.
 * @param saturated_threshold Utilization at or above which an hour
 *                            counts as saturated (paper: near full
 *                            bandwidth).
 * @return Lifetime record with power_on = hours() * 1h.
 */
LifetimeRecord hourToLifetime(const HourTrace &hour,
                              double saturated_threshold = 0.9);

/**
 * Verify the aggregation identity between a ms trace and an hour
 * trace derived from the same activity: command and block totals
 * must match exactly.
 *
 * @return True when consistent.
 */
bool consistentMsHour(const MsTrace &ms, const HourTrace &hour);

/**
 * Verify the aggregation identity between an hour trace and a
 * lifetime record derived from it.
 *
 * @return True when consistent.
 */
bool consistentHourLifetime(const HourTrace &hour,
                            const LifetimeRecord &life);

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_AGGREGATE_HH
