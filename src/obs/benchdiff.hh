/**
 * @file
 * Bench-regression gate: parse BENCH_*.json perf trajectories and
 * diff two of them against configurable thresholds.
 *
 * Every bench binary leaves a BENCH_<name>.json behind
 * (obs::BenchReportGuard): wall time plus a full metrics snapshot.
 * Until now nothing consumed that trajectory.  `dlwtool bench-diff
 * old.json new.json` closes the loop: it compares wall time, every
 * counter/gauge value, and every histogram's count and p95, flags
 * changes beyond the thresholds, and exits nonzero so CI can turn a
 * silent slowdown into an annotation.
 *
 * What counts as a regression:
 *  - wall time up by more than `wall_pct`
 *  - a histogram p95 up by more than `p95_pct` (latency shift)
 *  - a counter/gauge/histogram-count drifting by more than
 *    `counter_pct` in either direction — volume metrics are
 *    deterministic per bench, so drift means the workload changed,
 *    which invalidates the wall-time comparison
 *
 * The JSON parser underneath is a minimal zero-dependency recursive
 * descent over the subset BENCH files use (objects, arrays, strings,
 * numbers, bools, null) — exposed because the timeline tests reuse
 * it to validate exported traces.
 */

#ifndef DLW_OBS_BENCHDIFF_HH
#define DLW_OBS_BENCHDIFF_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hh"
#include "obs/metrics.hh"

namespace dlw
{
namespace obs
{

/**
 * One parsed JSON value (tree).
 */
struct JsonValue
{
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kObject,
        kArray,
    };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    /** Object members in source order. */
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> items;

    /** Member lookup (objects only); nullptr when absent. */
    const JsonValue *find(const std::string &key) const;
};

/** Parse a complete JSON document (trailing junk is an error). */
StatusOr<JsonValue> parseJson(const std::string &text);

/** One metric's comparable numbers inside a bench report. */
struct BenchSample
{
    MetricType type = MetricType::kCounter;
    double value = 0.0;        ///< counter value or gauge level
    std::uint64_t count = 0;   ///< histogram observation count
    double p95 = 0.0;          ///< histogram p95
};

/** A parsed BENCH_<name>.json. */
struct BenchReport
{
    std::string bench;
    double wall_seconds = 0.0;
    std::map<std::string, BenchSample> metrics;
};

/** Parse BENCH json text into a report. */
StatusOr<BenchReport> parseBenchReport(const std::string &json_text);

/** Read and parse a BENCH json file. */
StatusOr<BenchReport> readBenchReport(const std::string &path);

/** Regression thresholds, in percent. */
struct BenchDiffThresholds
{
    double wall_pct = 10.0;    ///< wall-time growth budget
    double p95_pct = 15.0;     ///< histogram p95 growth budget
    double counter_pct = 5.0;  ///< volume drift budget (either way)
};

/** One compared quantity. */
struct BenchDiffEntry
{
    std::string key; ///< "wall_seconds", "<metric>", "<metric>.p95"
    double old_value = 0.0;
    double new_value = 0.0;
    /** Percent change relative to old (100 when old == 0, new != 0). */
    double delta_pct = 0.0;
    bool regressed = false;
};

/** The full comparison. */
struct BenchDiffResult
{
    std::vector<BenchDiffEntry> entries; ///< ascending by key
    std::vector<std::string> only_old;   ///< metrics that disappeared
    std::vector<std::string> only_new;   ///< metrics that appeared
    bool regressed = false;              ///< any entry regressed
};

/** Compare two reports under the thresholds. */
BenchDiffResult diffBenchReports(const BenchReport &older,
                                 const BenchReport &newer,
                                 const BenchDiffThresholds &thresholds);

/** Human-readable diff table (changed quantities plus wall time). */
std::string renderBenchDiff(const BenchReport &older,
                            const BenchReport &newer,
                            const BenchDiffResult &diff);

} // namespace obs
} // namespace dlw

#endif // DLW_OBS_BENCHDIFF_HH
