/**
 * @file
 * Idleness analysis.
 *
 * The paper's second finding: drives "experience long stretches of
 * idleness", which matters because background work (scrubbing,
 * destaging, power management) lives in idle intervals and needs
 * them to be long, not merely frequent.  The analysis therefore
 * reports not only the idle-interval length distribution but the
 * idle-time mass above a duration threshold: what fraction of all
 * idle time sits in intervals long enough to use.
 */

#ifndef DLW_CORE_IDLENESS_HH
#define DLW_CORE_IDLENESS_HH

#include <utility>
#include <vector>

#include "disk/drive.hh"
#include "stats/ecdf.hh"

namespace dlw
{
namespace core
{

/**
 * Complete idleness characterization of one drive run.
 */
class IdlenessAnalysis
{
  public:
    /** Analyse the idle structure of a service log. */
    explicit IdlenessAnalysis(const disk::ServiceLog &log);

    /** Number of idle intervals. */
    std::size_t count() const { return intervals_.size(); }

    /** Total idle time. */
    Tick totalIdle() const { return total_idle_; }

    /** Idle fraction of the window (1 - utilization). */
    double idleFraction() const;

    /** Mean idle-interval length (0 when none). */
    Tick meanInterval() const;

    /** Idle-interval length at a quantile. */
    Tick intervalQuantile(double q) const;

    /** Longest idle interval. */
    Tick longestInterval() const;

    /**
     * Fraction of idle intervals at least t long (by count).
     */
    double fractionOfIntervalsAtLeast(Tick t) const;

    /**
     * Fraction of total idle *time* contained in intervals at least
     * t long — the usable-idleness measure.
     */
    double idleMassAtLeast(Tick t) const;

    /**
     * CDF curve of interval lengths: (length, P(X <= length)) at n
     * points, for the E4 figure.
     */
    std::vector<std::pair<double, double>> lengthCdf(
        std::size_t points) const;

    /**
     * Idle-mass curve: (threshold, idleMassAtLeast(threshold)) over
     * geometrically spaced thresholds between 1 ms and the longest
     * interval.
     */
    std::vector<std::pair<Tick, double>> massCurve(
        std::size_t points) const;

    /** Raw interval lengths (sorted ascending). */
    const std::vector<Tick> &intervals() const { return intervals_; }

  private:
    std::vector<Tick> intervals_; // sorted
    std::vector<Tick> suffix_sum_; // idle mass in intervals >= i
    Tick total_idle_ = 0;
    Tick window_ = 0;
};

} // namespace core
} // namespace dlw

#endif // DLW_CORE_IDLENESS_HH
