#include "trace/spc.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/fault.hh"
#include "common/strutil.hh"
#include "obs/span.hh"

namespace dlw
{
namespace trace
{

StatusOr<MsTrace>
readSpc(std::istream &is, const std::string &drive_id,
        const IngestOptions &opts, IngestStats *stats, int asu)
{
    IngestStats st;
    IngestMetricsScope obs_scope(st);
    const bool clamp = opts.policy == RecordPolicy::kBestEffortClamp;
    MsTrace trace(drive_id, 0, 0);
    std::string line;
    std::size_t lineno = 0;
    Tick last = 0;

    while (std::getline(is, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        const std::size_t record_bytes = line.size() + 1;

        std::string why;
        bool was_clamped = false;
        Request r;
        bool filtered = false;
        auto at = [&](const std::string &what) {
            std::ostringstream os;
            os << "SPC line " << lineno << ": " << what;
            return os.str();
        };

        if (FAULT_POINT("trace.read.record")) {
            why = at("injected fault at trace.read.record");
        } else {
            auto f = split(t, ',');
            std::int64_t rec_asu = 0;
            std::uint64_t size_bytes = 0;
            double ts = 0.0;
            if (f.size() < 5) {
                why = at("expected 5 fields");
            } else if (!tryParseInt(f[0], rec_asu)) {
                why = at("malformed asu '" + trim(f[0]) + "'");
            } else if (asu >= 0 && rec_asu != asu) {
                filtered = true;
            } else if (!tryParseUint(f[1], r.lba)) {
                why = at("malformed lba '" + trim(f[1]) + "'");
            } else if (!tryParseUint(f[2], size_bytes)) {
                why = at("malformed size '" + trim(f[2]) + "'");
            } else if (!tryParseDouble(f[4], ts)) {
                why = at("malformed timestamp '" + trim(f[4]) + "'");
            } else {
                if (size_bytes == 0 || size_bytes % kBlockBytes != 0) {
                    why = at("size not a positive multiple of 512");
                    if (clamp) {
                        // Round up to whole blocks, floor one block.
                        size_bytes =
                            ((size_bytes + kBlockBytes - 1) /
                             kBlockBytes) * kBlockBytes;
                        if (size_bytes == 0)
                            size_bytes = kBlockBytes;
                        was_clamped = true;
                    }
                }
                if (why.empty() || was_clamped) {
                    r.blocks = static_cast<BlockCount>(size_bytes /
                                                       kBlockBytes);
                    const std::string op = trim(f[3]);
                    if (op == "r" || op == "R") {
                        r.op = Op::Read;
                    } else if (op == "w" || op == "W") {
                        r.op = Op::Write;
                    } else {
                        why = at("bad opcode '" + op + "'");
                        was_clamped = false;
                    }
                }
                if (why.empty() || was_clamped) {
                    if (ts < 0.0) {
                        why = at("negative timestamp");
                        if (clamp) {
                            ts = 0.0;
                            was_clamped = true;
                        } else {
                            was_clamped = false;
                        }
                    }
                }
                if (why.empty() || was_clamped)
                    r.arrival = secondsToTicks(ts);
            }
        }

        if (filtered)
            continue;
        if (!why.empty()) {
            st.noteError(why, opts.max_error_samples);
            if (opts.policy == RecordPolicy::kAbort) {
                if (stats)
                    *stats = st;
                return Status::corruptData(why);
            }
            if (!was_clamped) {
                ++st.records_skipped;
                continue;
            }
            ++st.records_clamped;
        }
        last = std::max(last, r.arrival);
        trace.append(r);
        ++st.records_read;
        st.bytes_read += record_bytes;
        if (st.errors != 0)
            st.bytes_recovered += record_bytes;
    }

    trace.setWindow(0, trace.empty() ? 0 : last + 1);
    trace.sortByArrival();
    if (stats)
        *stats = st;
    return trace;
}

StatusOr<MsTrace>
readSpc(const std::string &path, const std::string &drive_id,
        const IngestOptions &opts, IngestStats *stats, int asu)
{
    std::ifstream is;
    {
        obs::ScopedSpan span("ingest.open");
        if (FAULT_POINT("trace.open")) {
            return Status::ioError(
                "injected fault at trace.open on '" + path + "'");
        }
        is.open(path);
    }
    if (!is) {
        return Status::ioError("cannot open '" + path +
                               "' for reading");
    }
    StatusOr<MsTrace> r = readSpc(is, drive_id, opts, stats, asu);
    if (!r.ok()) {
        Status e = r.status();
        return e.withContext("reading '" + path + "'");
    }
    return r;
}

MsTrace
readSpc(std::istream &is, const std::string &drive_id, int asu)
{
    return readSpc(is, drive_id, IngestOptions{}, nullptr, asu)
        .valueOrThrow();
}

MsTrace
readSpc(const std::string &path, const std::string &drive_id, int asu)
{
    return readSpc(path, drive_id, IngestOptions{}, nullptr, asu)
        .valueOrThrow();
}

void
writeSpc(std::ostream &os, const MsTrace &trace)
{
    for (const Request &r : trace.requests()) {
        os << 0 << ',' << r.lba << ',' << r.bytes() << ','
           << (r.isRead() ? 'r' : 'w') << ','
           << formatDouble(ticksToSeconds(r.arrival), 9) << '\n';
    }
}

} // namespace trace
} // namespace dlw
