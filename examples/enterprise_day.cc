/**
 * @file
 * A full enterprise day on one drive, observed at three time-scales.
 *
 * Builds a 24-hour trace whose intensity follows a business-day
 * diurnal curve (quiet night, morning ramp, afternoon peak, nightly
 * batch window), services it through the drive model, and then
 * looks at the same activity the three ways the paper does:
 * per-second utilization, per-hour counters, and the day's
 * "lifetime" summary.
 */

#include <iostream>

#include "common/rng.hh"
#include "common/strutil.hh"
#include "core/characterize.hh"
#include "core/report.hh"
#include "disk/drive.hh"
#include "synth/diurnal.hh"
#include "synth/workload.hh"
#include "trace/aggregate.hh"

int
main()
{
    using namespace dlw;

    disk::DriveConfig config = disk::DriveConfig::makeEnterprise();
    const Lba cap = config.geometry.capacityBlocks();

    // Diurnal intensity: trough at 10% of peak, 2 am batch window.
    synth::DiurnalShape shape;
    shape.night_level = 0.1;
    shape.day_level = 1.0;
    shape.peak_hour = 14.0;
    shape.batch_level = 0.55;
    shape.batch_start_hour = 2.0;
    shape.batch_hours = 2.0;
    synth::RateFunction rate = shape.build();

    // Peak 180 req/s, thinned by the diurnal curve.
    Rng rng(7);
    synth::NhppArrivals arrivals(180.0, rate, 1.0);
    std::vector<Tick> ticks = arrivals.generate(rng, 0, kDay);

    // File-server request mix layered on the diurnal arrivals.
    synth::Workload mix = synth::Workload::makeFileServer(cap, 1.0);
    trace::MsTrace tr =
        mix.generateFromArrivals(rng, "day-drive", 0, kDay, ticks);
    std::cout << "one day, " << tr.size() << " requests, "
              << formatBytes(static_cast<double>(tr.totalBytes()))
              << "\n\n";

    disk::DiskDrive drive(config);
    disk::ServiceLog log = drive.service(tr);

    // Scale 1: the millisecond view.
    core::DriveCharacterization c = core::characterizeMs(tr, log);

    // Scale 2: the hour view, derived from the same activity.
    trace::HourTrace hours = trace::msToHour(tr, log.busy);
    core::addHourScale(c, hours);

    // Scale 3: the lifetime summary of the day.
    core::addLifetimeScale(c, trace::hourToLifetime(hours));

    std::cout << c.render() << '\n';

    // The hour-by-hour picture a firmware log would show.
    core::Table t("hour-by-hour (firmware-log view)",
                  {"hour", "requests", "read%", "util%"});
    for (std::size_t h = 0; h < hours.hours(); ++h) {
        const trace::HourBucket &b = hours.at(h);
        t.addRow({std::to_string(h), std::to_string(b.total()),
                  core::cell(100.0 * b.readFraction()),
                  core::cell(100.0 * b.utilization())});
    }
    t.print(std::cout);

    std::cout << "\nNote how the 2am batch window and the afternoon "
                 "peak both show at hour scale, while the "
                 "second-scale peaks inside them only show in the "
                 "ms-scale characterization above.\n";
    return 0;
}
