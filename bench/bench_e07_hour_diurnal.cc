/**
 * @file
 * E7 — requests per hour over four weeks: diurnal and weekly cycles.
 *
 * Regenerates the Hour-trace timeline figure: one drive's hourly
 * request counts over a month show the day/night swing, the weekday/
 * weekend drop, and overdispersed hour-to-hour noise.  The table
 * quantifies the ratios.
 */

#include <iostream>

#include "benchutil.hh"
#include "common/strutil.hh"
#include "core/burstiness.hh"
#include "core/report.hh"

#include "obs/export.hh"

using namespace dlw;

int
main()
{
    obs::BenchReportGuard obs_guard("e07_hour_diurnal");
    std::cout << "E7: hourly activity over four weeks\n\n";

    synth::FamilyModel family = bench::makeFamily();
    // Pick a moderate-class drive for the timeline.
    synth::DriveProfile profile;
    for (std::size_t i = 0;; ++i) {
        profile = family.sampleProfile(i);
        if (profile.cls == synth::DriveClass::Moderate)
            break;
    }
    trace::HourTrace t =
        family.generateHourTrace(profile, bench::kHourSpan);

    // First-week hourly series for the figure.
    std::vector<std::pair<double, double>> week;
    for (std::size_t h = 0; h < 168; ++h)
        week.emplace_back(static_cast<double>(h),
                          static_cast<double>(t.at(h).total()));
    core::printSeries(std::cout, "E7-hourly-timeline", profile.id,
                      week);
    std::cout << '\n';

    // Hour-of-week average profile (all four weeks folded).
    auto folded = t.hourOfWeekProfile();
    std::vector<std::pair<double, double>> prof;
    for (std::size_t h = 0; h < folded.size(); h += 4)
        prof.emplace_back(static_cast<double>(h), folded[h]);
    core::printSeries(std::cout, "E7-hour-of-week", profile.id, prof);
    std::cout << '\n';

    // Ratio table: day/night and weekday/weekend.
    double day = 0.0, night = 0.0, weekday = 0.0, weekend = 0.0;
    std::size_t nd = 0, nn = 0, nwd = 0, nwe = 0;
    for (std::size_t h = 0; h < t.hours(); ++h) {
        const double v = static_cast<double>(t.at(h).total());
        const std::size_t hod = h % 24;
        const std::size_t dow = (h / 24) % 7;
        if (hod >= 9 && hod < 18) {
            day += v;
            ++nd;
        }
        if (hod < 5) {
            night += v;
            ++nn;
        }
        if (dow < 5) {
            weekday += v;
            ++nwd;
        } else {
            weekend += v;
            ++nwe;
        }
    }

    core::Table r("diurnal/weekly ratios (" + profile.id + ")",
                  {"metric", "value"});
    r.addRow({"mean req/h (business hours)",
              core::cell(day / static_cast<double>(nd))});
    r.addRow({"mean req/h (night)",
              core::cell(night / static_cast<double>(nn))});
    r.addRow({"day/night ratio",
              core::cell((day / static_cast<double>(nd)) /
                         std::max(night / static_cast<double>(nn),
                                  1e-9))});
    r.addRow({"mean req/h (weekday)",
              core::cell(weekday / static_cast<double>(nwd))});
    r.addRow({"mean req/h (weekend)",
              core::cell(weekend / static_cast<double>(nwe))});
    r.addRow({"weekday/weekend ratio",
              core::cell((weekday / static_cast<double>(nwd)) /
                         std::max(weekend / static_cast<double>(nwe),
                                  1e-9))});
    r.print(std::cout);
    std::cout << '\n';

    // Hour-scale burstiness: counts remain overdispersed even at
    // hour..day..week aggregation.
    core::BurstinessReport rep = core::analyzeCountSeries(
        t.requestSeries(), {1, 2, 6, 12, 24, 84});
    core::Table b("hour-scale burstiness (" + profile.id + ")",
                  {"window", "IDC"});
    for (const auto &p : rep.idc)
        b.addRow({formatDuration(p.window), core::cell(p.idc)});
    b.print(std::cout);

    std::cout << "\nShape check: pronounced day/night and weekday/"
                 "weekend swings; IDC >> 1 even at day scale "
                 "(bursty at coarse time scales too).\n";
    return 0;
}
