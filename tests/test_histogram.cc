/**
 * @file
 * Unit tests for stats/histogram (linear and log).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/histogram.hh"

namespace dlw
{
namespace stats
{
namespace
{

TEST(LinearHistogram, BinningAndEdges)
{
    LinearHistogram h(0.0, 10.0, 10);
    h.add(0.0);   // bin 0
    h.add(0.999); // bin 0
    h.add(1.0);   // bin 1
    h.add(9.999); // bin 9
    EXPECT_DOUBLE_EQ(h.binWeight(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binWeight(1), 1.0);
    EXPECT_DOUBLE_EQ(h.binWeight(9), 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 4.0);
    EXPECT_DOUBLE_EQ(h.binLower(3), 3.0);
    EXPECT_DOUBLE_EQ(h.binUpper(3), 4.0);
    EXPECT_DOUBLE_EQ(h.binMid(3), 3.5);
}

TEST(LinearHistogram, UnderOverflow)
{
    LinearHistogram h(0.0, 1.0, 4);
    h.add(-0.5);
    h.add(1.0); // hi edge is exclusive -> overflow
    h.add(2.0);
    EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
    EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
    EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(LinearHistogram, WeightedAdds)
{
    LinearHistogram h(0.0, 1.0, 2);
    h.addWeighted(0.25, 2.5);
    h.addWeighted(0.75, 0.5);
    EXPECT_DOUBLE_EQ(h.binWeight(0), 2.5);
    EXPECT_DOUBLE_EQ(h.binWeight(1), 0.5);
    EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(LinearHistogram, QuantileInterpolation)
{
    LinearHistogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    // Uniform mass: median should land near 50.
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
    EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
}

TEST(LinearHistogram, ApproximateMean)
{
    LinearHistogram h(0.0, 10.0, 100);
    Rng rng(5);
    double exact = 0.0;
    for (int i = 0; i < 100000; ++i) {
        double v = rng.uniform(2.0, 8.0);
        h.add(v);
        exact += v;
    }
    EXPECT_NEAR(h.approximateMean(), exact / 100000, 0.05);
}

TEST(LinearHistogram, MergeIdenticalLayout)
{
    LinearHistogram a(0.0, 1.0, 4), b(0.0, 1.0, 4);
    a.add(0.1);
    b.add(0.9);
    b.add(-1.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.total(), 3.0);
    EXPECT_DOUBLE_EQ(a.binWeight(0), 1.0);
    EXPECT_DOUBLE_EQ(a.binWeight(3), 1.0);
    EXPECT_DOUBLE_EQ(a.underflow(), 1.0);
}

TEST(LinearHistogramDeathTest, MergeMismatch)
{
    LinearHistogram a(0.0, 1.0, 4), b(0.0, 2.0, 4);
    EXPECT_DEATH(a.merge(b), "different layouts");
}

TEST(LinearHistogramDeathTest, BadConstruction)
{
    EXPECT_DEATH(LinearHistogram(1.0, 0.0, 4), "inverted");
    EXPECT_DEATH(LinearHistogram(0.0, 1.0, 0), "at least one bin");
}

TEST(LogHistogram, DecadeLayout)
{
    LogHistogram h(1.0, 1000.0, 1);
    EXPECT_EQ(h.binCount(), 3u);
    EXPECT_NEAR(h.binLower(0), 1.0, 1e-9);
    EXPECT_NEAR(h.binUpper(0), 10.0, 1e-9);
    EXPECT_NEAR(h.binLower(2), 100.0, 1e-6);
}

TEST(LogHistogram, BinsSamplesByMagnitude)
{
    LogHistogram h(1.0, 1e6, 2);
    h.add(2.0);
    h.add(3.0);
    h.add(20000.0);
    EXPECT_DOUBLE_EQ(h.total(), 3.0);
    EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
    // The two small samples share a bin; the large one is far away.
    double small_bin = 0.0, big_bin = 0.0;
    for (std::size_t i = 0; i < h.binCount(); ++i) {
        if (h.binLower(i) <= 2.0 && 2.0 < h.binUpper(i))
            small_bin = h.binWeight(i);
        if (h.binLower(i) <= 20000.0 && 20000.0 < h.binUpper(i))
            big_bin = h.binWeight(i);
    }
    EXPECT_DOUBLE_EQ(small_bin, 2.0);
    EXPECT_DOUBLE_EQ(big_bin, 1.0);
}

TEST(LogHistogram, NonPositiveGoesToUnderflow)
{
    LogHistogram h(1.0, 100.0, 2);
    h.add(0.0);
    h.add(-5.0);
    h.add(0.5);
    EXPECT_DOUBLE_EQ(h.underflow(), 3.0);
}

TEST(LogHistogram, QuantileOnLognormalData)
{
    LogHistogram h(1e-3, 1e3, 16);
    Rng rng(6);
    std::vector<double> xs;
    for (int i = 0; i < 200000; ++i) {
        double v = rng.lognormal(0.0, 1.0);
        h.add(v);
        xs.push_back(v);
    }
    std::sort(xs.begin(), xs.end());
    const double exact_med = xs[xs.size() / 2];
    EXPECT_NEAR(h.quantile(0.5) / exact_med, 1.0, 0.1);
    const double exact_p99 = xs[static_cast<std::size_t>(
        0.99 * static_cast<double>(xs.size()))];
    EXPECT_NEAR(h.quantile(0.99) / exact_p99, 1.0, 0.15);
}

TEST(LogHistogram, CcdfMonotone)
{
    LogHistogram h(1.0, 1e4, 4);
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.pareto(1.5, 1.0));
    auto c = h.ccdf();
    ASSERT_FALSE(c.empty());
    EXPECT_NEAR(c.front().second, 1.0, 0.01);
    for (std::size_t i = 1; i < c.size(); ++i) {
        EXPECT_LE(c[i].second, c[i - 1].second + 1e-12);
        EXPECT_GT(c[i].first, c[i - 1].first);
    }
}

TEST(LogHistogram, Merge)
{
    LogHistogram a(1.0, 100.0, 2), b(1.0, 100.0, 2);
    a.add(5.0);
    b.add(50.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.total(), 2.0);
}

} // anonymous namespace
} // namespace stats
} // namespace dlw
