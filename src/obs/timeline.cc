#include "obs/timeline.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>

#include "common/logging.hh"

namespace dlw
{
namespace obs
{

namespace detail
{

std::atomic<int> g_timeline_armed{0};

} // namespace detail

namespace
{

/**
 * Ring registry.  Rings are created once per thread, owned forever
 * (threads come and go; their history must survive for the dump),
 * and found lock-free on the hot path through a thread_local cache.
 * The mutex guards only registration and snapshotting.
 */
struct TimelineState
{
    std::mutex mu;
    std::vector<std::unique_ptr<TimelineRing>> rings;
    std::size_t capacity = kDefaultTimelineCapacity;
    /** Epoch every ts_ns is relative to; fixed at first arm. */
    std::chrono::steady_clock::time_point epoch{};
    bool epoch_set = false;
};

TimelineState &
state()
{
    static TimelineState *s = new TimelineState();
    return *s;
}

/**
 * Lock-free shadow of the ring registry for the crash-dump path,
 * which cannot touch the mutex.  Fixed capacity: threads beyond
 * kMaxCrashRings still record, they just don't appear in a crash
 * dump.
 */
constexpr std::size_t kMaxCrashRings = 512;
std::atomic<TimelineRing *> g_ring_table[kMaxCrashRings] = {};
std::atomic<std::size_t> g_ring_count{0};

thread_local TimelineRing *t_ring = nullptr;

std::uint64_t
nowNs()
{
    TimelineState &s = state();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - s.epoch)
            .count());
}

TimelineRing &
ringForThisThread()
{
    if (t_ring)
        return *t_ring;
    TimelineState &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    auto ring = std::make_unique<TimelineRing>(
        s.capacity, static_cast<std::uint32_t>(s.rings.size()));
    t_ring = ring.get();
    s.rings.push_back(std::move(ring));
    const std::size_t idx = s.rings.size() - 1;
    if (idx < kMaxCrashRings) {
        g_ring_table[idx].store(t_ring, std::memory_order_release);
        g_ring_count.store(idx + 1, std::memory_order_release);
    }
    return *t_ring;
}

} // anonymous namespace

namespace detail
{

void
timelineEmit(const char *name, TimelineEventKind kind, double value)
{
    ringForThisThread().push(name, kind, value, nowNs());
}

std::size_t
timelineRingCount()
{
    return std::min(g_ring_count.load(std::memory_order_acquire),
                    kMaxCrashRings);
}

const TimelineRing *
timelineRingAt(std::size_t i)
{
    if (i >= kMaxCrashRings)
        return nullptr;
    return g_ring_table[i].load(std::memory_order_acquire);
}

} // namespace detail

const char *
timelineEventKindName(TimelineEventKind kind)
{
    switch (kind) {
      case TimelineEventKind::kBegin:
        return "begin";
      case TimelineEventKind::kEnd:
        return "end";
      case TimelineEventKind::kInstant:
        return "instant";
      case TimelineEventKind::kCounter:
        return "counter";
    }
    return "unknown";
}

void
enableTimeline(std::size_t events_per_thread)
{
    TimelineState &s = state();
    {
        std::lock_guard<std::mutex> lk(s.mu);
        s.capacity = std::max<std::size_t>(events_per_thread, 1);
        if (!s.epoch_set) {
            s.epoch = std::chrono::steady_clock::now();
            s.epoch_set = true;
        }
    }
    detail::g_timeline_armed.fetch_add(1, std::memory_order_relaxed);
}

void
disableTimeline()
{
    const int prev = detail::g_timeline_armed.fetch_sub(
        1, std::memory_order_relaxed);
    dlw_assert(prev > 0,
               "disableTimeline without matching enableTimeline");
}

bool
timelineEnabled()
{
    return detail::timelineArmed();
}

const char *
internTimelineName(const std::string &name)
{
    // Leaked on purpose: event names must outlive every snapshot and
    // the crash-dump path, i.e. the process.
    static std::mutex *mu = new std::mutex();
    static std::set<std::string> *names = new std::set<std::string>();
    std::lock_guard<std::mutex> lk(*mu);
    return names->insert(name).first->c_str();
}

TimelineRing::TimelineRing(std::size_t capacity, std::uint32_t tid)
    : slots_(std::max<std::size_t>(capacity, 1)), tid_(tid)
{
}

void
TimelineRing::push(const char *name, TimelineEventKind kind,
                   double value, std::uint64_t ts_ns)
{
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot &e = slots_[h % slots_.size()];
    e.name.store(name, std::memory_order_relaxed);
    e.value.store(value, std::memory_order_relaxed);
    e.ts_ns.store(ts_ns, std::memory_order_relaxed);
    e.tid.store(tid_, std::memory_order_relaxed);
    e.kind.store(static_cast<std::uint8_t>(kind),
                 std::memory_order_relaxed);
    // Release so a snapshotting thread that observes the new head
    // also observes the slot contents.
    head_.store(h + 1, std::memory_order_release);
}

void
TimelineRing::snapshotInto(std::vector<TimelineEvent> &out) const
{
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n =
        std::min<std::uint64_t>(h, slots_.size());
    out.reserve(out.size() + static_cast<std::size_t>(n));
    const std::size_t base = out.size();
    for (std::uint64_t i = h - n; i < h; ++i)
        out.push_back(eventAt(i));
    // Lap detection: while we copied, the producer may have advanced
    // into our window.  Slot i is overwritten once the head passes
    // i + capacity, so everything below h2 - capacity is suspect —
    // discard it (oldest entries, at the front of what we appended).
    // The head_ release/acquire pair guarantees the slots we keep
    // were fully written before we first read the head.
    const std::uint64_t h2 = head_.load(std::memory_order_acquire);
    if (h2 > slots_.size() && h2 - slots_.size() > h - n) {
        const std::uint64_t lapped =
            std::min<std::uint64_t>((h2 - slots_.size()) - (h - n), n);
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(base),
                  out.begin() +
                      static_cast<std::ptrdiff_t>(base + lapped));
    }
}

std::uint64_t
TimelineRing::dropped() const
{
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return h > slots_.size() ? h - slots_.size() : 0;
}

std::uint64_t
timelineNowNs()
{
    return nowNs();
}

TimelineSnapshot
timelineSnapshot()
{
    TimelineState &s = state();
    TimelineSnapshot snap;
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto &ring : s.rings) {
        if (ring->pushed() == 0)
            continue;
        ++snap.threads;
        snap.dropped += ring->dropped();
        ring->snapshotInto(snap.events);
    }
    // Rings are per-thread chronological already; a stable sort by
    // timestamp interleaves threads without reordering ties.
    std::stable_sort(snap.events.begin(), snap.events.end(),
                     [](const TimelineEvent &a, const TimelineEvent &b) {
                         return a.ts_ns < b.ts_ns;
                     });
    return snap;
}

void
resetTimeline()
{
    TimelineState &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto &ring : s.rings)
        ring->clear();
}

} // namespace obs
} // namespace dlw
