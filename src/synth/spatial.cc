#include "synth/spatial.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace dlw
{
namespace synth
{

namespace
{

/** Clamp a starting LBA so the request fits inside the device. */
Lba
fitWithin(Lba lba, BlockCount blocks, Lba capacity)
{
    dlw_assert(blocks <= capacity, "request larger than device");
    const Lba max_start = capacity - blocks;
    return std::min(lba, max_start);
}

} // anonymous namespace

UniformSpatial::UniformSpatial(Lba capacity)
    : capacity_(capacity)
{
    dlw_assert(capacity > 0, "capacity must be positive");
}

Lba
UniformSpatial::nextLba(Rng &rng, BlockCount blocks)
{
    const Lba max_start = capacity_ - std::min<Lba>(blocks, capacity_);
    return static_cast<Lba>(
        rng.uniformInt(0, static_cast<std::int64_t>(max_start)));
}

ZipfHotspot::ZipfHotspot(Lba capacity, std::size_t extents,
                         double skew, std::uint64_t perm_seed)
    : capacity_(capacity), extents_(extents), skew_(skew)
{
    dlw_assert(capacity > 0, "capacity must be positive");
    dlw_assert(extents >= 2, "need at least two extents");
    dlw_assert(skew >= 0.0, "negative zipf skew");

    // Shuffle ranks onto locations so hot extents are scattered, as
    // real hot files are.
    perm_.resize(extents);
    std::iota(perm_.begin(), perm_.end(), 0u);
    Rng perm_rng(perm_seed);
    for (std::size_t i = extents - 1; i > 0; --i) {
        auto j = static_cast<std::size_t>(
            perm_rng.uniformInt(0, static_cast<std::int64_t>(i)));
        std::swap(perm_[i], perm_[j]);
    }
}

Lba
ZipfHotspot::nextLba(Rng &rng, BlockCount blocks)
{
    const auto rank = static_cast<std::size_t>(
        rng.zipf(static_cast<std::int64_t>(extents_), skew_));
    const std::size_t extent = perm_[rank];
    const Lba ext_size = capacity_ / extents_;
    const Lba base = ext_size * extent;
    const Lba span = extent + 1 == extents_
        ? capacity_ - base
        : ext_size;
    const Lba offset = static_cast<Lba>(
        rng.uniformInt(0, static_cast<std::int64_t>(span - 1)));
    return fitWithin(base + offset, blocks, capacity_);
}

SequentialRuns::SequentialRuns(Lba capacity, double continue_prob)
    : capacity_(capacity), continue_prob_(continue_prob)
{
    dlw_assert(capacity > 0, "capacity must be positive");
    dlw_assert(continue_prob >= 0.0 && continue_prob < 1.0,
               "continue probability must be in [0, 1)");
}

void
SequentialRuns::reset()
{
    in_run_ = false;
    next_ = 0;
}

Lba
SequentialRuns::nextLba(Rng &rng, BlockCount blocks)
{
    if (in_run_ && rng.bernoulli(continue_prob_) &&
        next_ + blocks <= capacity_) {
        const Lba lba = next_;
        next_ += blocks;
        return lba;
    }
    // Start a new run at a random aligned location.
    const Lba max_start = capacity_ - std::min<Lba>(blocks, capacity_);
    const Lba lba = static_cast<Lba>(
        rng.uniformInt(0, static_cast<std::int64_t>(max_start)));
    in_run_ = true;
    next_ = lba + blocks;
    return lba;
}

MixedSpatial::MixedSpatial(std::unique_ptr<SpatialModel> a,
                           std::unique_ptr<SpatialModel> b,
                           double a_prob)
    : a_(std::move(a)), b_(std::move(b)), a_prob_(a_prob)
{
    dlw_assert(a_ && b_, "mixed spatial needs two models");
    dlw_assert(a_->capacity() == b_->capacity(),
               "mixed spatial capacities differ");
    dlw_assert(a_prob >= 0.0 && a_prob <= 1.0,
               "mixture probability out of range");
}

Lba
MixedSpatial::nextLba(Rng &rng, BlockCount blocks)
{
    return rng.bernoulli(a_prob_) ? a_->nextLba(rng, blocks)
                                  : b_->nextLba(rng, blocks);
}

Lba
MixedSpatial::capacity() const
{
    return a_->capacity();
}

void
MixedSpatial::reset()
{
    a_->reset();
    b_->reset();
}

} // namespace synth
} // namespace dlw
