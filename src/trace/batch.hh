/**
 * @file
 * Fixed-capacity request batch: the unit of the streaming pipeline.
 *
 * The streaming data path decodes a trace chunk-by-chunk instead of
 * materializing one std::vector<Request> per drive; a RequestBatch is
 * one such chunk.  Storage is struct-of-arrays so a kernel that only
 * needs arrivals (binned counts, interarrival gaps) walks a dense
 * Tick array instead of striding over 32-byte records, and so the
 * batch's memory footprint is exactly capacity * 21 bytes regardless
 * of how the fields pad inside Request.
 *
 * A batch is reused across the whole stream: the source clears and
 * refills it, so steady-state decoding allocates nothing.
 */

#ifndef DLW_TRACE_BATCH_HH
#define DLW_TRACE_BATCH_HH

#include <cstddef>
#include <vector>

#include "qos/tag.hh"
#include "trace/record.hh"

namespace dlw
{
namespace trace
{

/** Default batch capacity: 4096 requests ~= 84 KiB of payload. */
constexpr std::size_t kDefaultBatchRequests = 4096;

/**
 * A bounded chunk of a request stream, in arrival order.
 */
class RequestBatch
{
  public:
    /** @param capacity Fixed capacity in requests (> 0). */
    explicit RequestBatch(std::size_t capacity = kDefaultBatchRequests);

    /** Fixed capacity in requests. */
    std::size_t capacity() const { return capacity_; }

    /** Requests currently held. */
    std::size_t size() const { return arrivals_.size(); }

    /** True when the batch holds no requests. */
    bool empty() const { return arrivals_.empty(); }

    /** True when the batch is at capacity. */
    bool full() const { return arrivals_.size() == capacity_; }

    /** Drop all requests (capacity and storage are kept). */
    void clear();

    /** Append a request (asserts the batch is not full). */
    void append(const Request &req);

    /** Arrival tick of request i. */
    Tick arrival(std::size_t i) const { return arrivals_[i]; }

    /** Starting LBA of request i. */
    Lba lba(std::size_t i) const { return lbas_[i]; }

    /** Length of request i in blocks. */
    BlockCount blocks(std::size_t i) const { return blocks_[i]; }

    /** Direction of request i. */
    Op op(std::size_t i) const { return ops_[i]; }

    /** True when request i is a read. */
    bool isRead(std::size_t i) const { return ops_[i] == Op::Read; }

    /** One past the last block request i touches. */
    Lba lbaEnd(std::size_t i) const { return lbas_[i] + blocks_[i]; }

    /** Payload bytes of request i. */
    std::uint64_t
    bytes(std::size_t i) const
    {
        return static_cast<std::uint64_t>(blocks_[i]) * kBlockBytes;
    }

    /** Reassembled request i (for AoS consumers). */
    Request get(std::size_t i) const;

    /** Dense arrival-tick array (size() entries). */
    const std::vector<Tick> &arrivals() const { return arrivals_; }

    // Raw column pointers for the batch kernels (size() entries
    // each).  Valid until the next append()/clear().
    /** Arrival ticks. */
    const Tick *arrivalsData() const { return arrivals_.data(); }
    /** Starting LBAs. */
    const Lba *lbasData() const { return lbas_.data(); }
    /** Request lengths in blocks. */
    const BlockCount *blocksData() const { return blocks_.data(); }
    /** Directions (Op is a uint8_t enum; dense byte column). */
    const Op *opsData() const { return ops_.data(); }

    /** Payload bytes currently held across all columns. */
    std::size_t byteSize() const;

    /**
     * Tenant/class tag of every request in the batch.
     *
     * One tag per batch, not per request: a batch never mixes
     * tenants because each source belongs to exactly one session.
     * The tag survives clear() — a source stamps it once and the
     * batch keeps it across refills.
     */
    const qos::TagId &tag() const { return tag_; }

    /** Stamp the batch's tenant/class tag. */
    void setTag(const qos::TagId &tag) { tag_ = tag; }

  private:
    std::size_t capacity_;
    qos::TagId tag_;
    std::vector<Tick> arrivals_;
    std::vector<Lba> lbas_;
    std::vector<BlockCount> blocks_;
    std::vector<Op> ops_;
};

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_BATCH_HH
