/**
 * @file
 * M1 — google-benchmark microbenchmarks of the toolkit's hot
 * kernels: workload synthesis, drive servicing, binary trace I/O,
 * and the statistical estimators the figures depend on.
 */

#include <benchmark/benchmark.h>

#include "obs/export.hh"

#include <sstream>

#include "benchutil.hh"
#include "core/burstiness.hh"
#include "stats/hurst.hh"
#include "synth/bmodel.hh"
#include "trace/aggregate.hh"
#include "trace/binio.hh"

using namespace dlw;

namespace
{

trace::MsTrace
sampleTrace(Tick window)
{
    Rng rng(1);
    synth::Workload w = synth::Workload::makeOltp(1 << 24, 200.0);
    return w.generate(rng, "micro", 0, window);
}

void
BM_WorkloadGenerate(benchmark::State &state)
{
    Rng rng(1);
    synth::Workload w = synth::Workload::makeOltp(1 << 24, 200.0);
    std::uint64_t requests = 0;
    for (auto _ : state) {
        trace::MsTrace tr = w.generate(rng, "g", 0, 10 * kSec);
        requests += tr.size();
        benchmark::DoNotOptimize(tr);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_WorkloadGenerate);

void
BM_DriveService(benchmark::State &state)
{
    trace::MsTrace tr = sampleTrace(10 * kSec);
    disk::DriveConfig cfg = disk::DriveConfig::makeEnterprise();
    std::uint64_t requests = 0;
    for (auto _ : state) {
        disk::DiskDrive drive(cfg);
        disk::ServiceLog log = drive.service(tr);
        requests += log.completions.size();
        benchmark::DoNotOptimize(log);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_DriveService);

void
BM_BModelCounts(benchmark::State &state)
{
    Rng rng(2);
    synth::BModel bm(0.8, static_cast<std::uint32_t>(state.range(0)));
    for (auto _ : state) {
        auto counts = bm.counts(rng, 1'000'000);
        benchmark::DoNotOptimize(counts);
    }
}
BENCHMARK(BM_BModelCounts)->Arg(12)->Arg(16)->Arg(20);

void
BM_BinaryRoundTrip(benchmark::State &state)
{
    trace::MsTrace tr = sampleTrace(30 * kSec);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        std::stringstream ss(std::ios::in | std::ios::out |
                             std::ios::binary);
        trace::writeMsBinary(ss, tr);
        trace::MsTrace back = trace::readMsBinary(ss);
        bytes += ss.str().size();
        benchmark::DoNotOptimize(back);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BinaryRoundTrip);

void
BM_HurstAggVar(benchmark::State &state)
{
    Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 1 << 16; ++i)
        xs.push_back(static_cast<double>(rng.poisson(10.0)));
    for (auto _ : state) {
        auto est = stats::hurstAggregatedVariance(xs);
        benchmark::DoNotOptimize(est);
    }
}
BENCHMARK(BM_HurstAggVar);

void
BM_BurstinessReport(benchmark::State &state)
{
    trace::MsTrace tr = sampleTrace(60 * kSec);
    for (auto _ : state) {
        auto rep = core::analyzeBurstiness(tr);
        benchmark::DoNotOptimize(rep);
    }
}
BENCHMARK(BM_BurstinessReport);

void
BM_MsToHour(benchmark::State &state)
{
    trace::MsTrace tr = sampleTrace(60 * kSec);
    for (auto _ : state) {
        auto hour = trace::msToHour(tr);
        benchmark::DoNotOptimize(hour);
    }
}
BENCHMARK(BM_MsToHour);

void
BM_FamilyHourSynthesis(benchmark::State &state)
{
    synth::FamilyModel family = bench::makeFamily();
    synth::DriveProfile p = family.sampleProfile(0);
    for (auto _ : state) {
        auto t = family.generateHourTrace(p, 24 * 7);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_FamilyHourSynthesis);

} // anonymous namespace

int
main(int argc, char **argv)
{
    dlw::obs::BenchReportGuard obs_guard("micro_kernels");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
