/**
 * @file
 * The disk-level request record.
 *
 * A Millisecond trace is a sequence of these: arrival timestamp at
 * nanosecond resolution, logical block address, length in 512-byte
 * blocks, and direction.  This mirrors what a drive-level bus
 * analyser or firmware logger records in the paper's finest-grained
 * data set.
 */

#ifndef DLW_TRACE_RECORD_HH
#define DLW_TRACE_RECORD_HH

#include "common/types.hh"

namespace dlw
{
namespace trace
{

/** Direction of a disk request. */
enum class Op : std::uint8_t
{
    Read = 0,
    Write = 1,
};

/**
 * One disk-level I/O request as seen at the drive interface.
 */
struct Request
{
    /** Arrival tick at the drive. */
    Tick arrival = 0;
    /** Starting logical block address (512 B blocks). */
    Lba lba = 0;
    /** Length in 512 B blocks (>= 1 for a valid request). */
    BlockCount blocks = 0;
    /** Read or write. */
    Op op = Op::Read;

    /** True for reads. */
    bool isRead() const { return op == Op::Read; }

    /** True for writes. */
    bool isWrite() const { return op == Op::Write; }

    /** Payload size in bytes. */
    std::uint64_t
    bytes() const
    {
        return static_cast<std::uint64_t>(blocks) * kBlockBytes;
    }

    /** One past the last block touched. */
    Lba lbaEnd() const { return lba + blocks; }

    bool
    operator==(const Request &o) const
    {
        return arrival == o.arrival && lba == o.lba &&
               blocks == o.blocks && op == o.op;
    }
};

/** Order requests by arrival time (stable tie-break on LBA). */
struct ByArrival
{
    bool
    operator()(const Request &a, const Request &b) const
    {
        if (a.arrival != b.arrival)
            return a.arrival < b.arrival;
        return a.lba < b.lba;
    }
};

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_RECORD_HH
