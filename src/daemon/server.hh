/**
 * @file
 * dlwd: the characterization daemon's epoll event loop.
 *
 * One thread owns every socket.  The loop accepts connections,
 * sniffs the first bytes to split them into ingest sessions (hello
 * line "DLWS1 ...") and HTTP results queries ("GET /metrics", ...),
 * and pumps non-blocking reads/writes through per-connection bounded
 * ByteQueues.  Ingest bytes feed a net::StreamDecoder whose batches
 * fold incrementally into a core::LiveCharacterization, so a
 * session's memory is one batch plus the accumulators — never the
 * trace.  The only work that leaves the loop thread is the final
 * fold (finish + render), which runs on a fleet::ThreadPool and
 * posts its completion back through an eventfd.
 *
 * Overload policy is shedding, not queueing: connections beyond
 * max_connections are answered with 503 / "DLWR1 error overloaded"
 * and closed; a connection whose buffered bytes exceed the
 * per-connection cap is closed outright.  SIGTERM (via
 * requestStop(), which is async-signal-safe) drains: the listener
 * closes immediately, in-flight sessions get drain_grace_ms to
 * finish, stragglers are then cut.
 */

#ifndef DLW_DAEMON_SERVER_HH
#define DLW_DAEMON_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hh"
#include "daemon/session.hh"
#include "fleet/pool.hh"
#include "net/http.hh"
#include "net/timer.hh"
#include "qos/ratekeeper.hh"

namespace dlw
{
namespace daemon
{

/** Version string served by /healthz and /v1/stats. */
inline constexpr const char *kDaemonVersion = "dlwd/1.0";

/** Tunables for one Server. */
struct ServerConfig
{
    /** TCP port; 0 binds an ephemeral port (read it via port()). */
    std::uint16_t port = 7433;

    /** Accept budget: connections beyond this are shed with 503. */
    std::size_t max_connections = 256;

    /** Per-connection cap on buffered (unparsed + unsent) bytes. */
    std::size_t max_buffer_bytes = std::size_t(4) << 20;

    /** Fold pool width; 0 = fleet::ThreadPool::hardwareThreads(). */
    std::size_t threads = 0;

    /** Grace period for in-flight sessions after requestStop(). */
    std::uint64_t drain_grace_ms = 5000;

    // Connection lifecycle deadlines (0 disables the deadline).

    /** Accept to first byte: a connection that never speaks. */
    std::uint64_t first_byte_timeout_ms = 10000;

    /**
     * First byte to complete hello line / HTTP head.  Absolute from
     * the first byte — trickling one byte per interval (slow loris)
     * does not extend it.
     */
    std::uint64_t header_timeout_ms = 10000;

    /**
     * Gap between payload reads on a stream, or between requests on
     * an HTTP keep-alive connection.
     */
    std::uint64_t idle_timeout_ms = 60000;

    /** Write progress stall: the peer stops draining our bytes. */
    std::uint64_t write_stall_timeout_ms = 10000;

    /**
     * Directory for crash-safe session checkpoints; empty disables
     * checkpointing.  Created if missing; reloaded on start().
     */
    std::string state_dir;

    /** Checkpoint sweep interval (with a non-empty state_dir). */
    std::uint64_t checkpoint_interval_ms = 1000;

    /**
     * Enable the QoS ratekeeper.  Off by default: with QoS off no
     * ratekeeper exists and every code path is byte-identical to the
     * pre-QoS daemon.  On, sessions are admitted/throttled per
     * tenant/class tag and folds run in per-class priority lanes.
     */
    bool qos = false;

    /** Ratekeeper tuning (used only when qos is true). */
    qos::RatekeeperConfig qos_config;
};

/**
 * The daemon.  start() binds, run() loops until requestStop() (or
 * stop()) and the drain completes.  One Server per process is the
 * intended shape, but nothing prevents several.
 */
class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + arm epoll.  Call once, before run(). */
    Status start();

    /** Bound TCP port (useful with config.port == 0). */
    std::uint16_t port() const { return bound_port_; }

    /**
     * Run the event loop on the calling thread until a stop request
     * has been honoured and every connection has drained or been
     * cut.
     */
    Status run();

    /**
     * Request a graceful drain.  Async-signal-safe (an atomic store
     * plus an eventfd write), so it may be called from a SIGTERM
     * handler or any thread.
     */
    void requestStop();

    /** Connections currently open (loop thread only). */
    std::size_t activeConnections() const { return conns_.size(); }

  private:
    enum class ConnState
    {
        kSniff,  ///< deciding: stream hello vs HTTP
        kHttp,   ///< serving GETs
        kStream, ///< ingesting a session payload
        kFold,   ///< stream done; waiting on the pool
    };

    /** Which read deadline a connection is currently under. */
    enum class ReadDeadline : std::uint8_t
    {
        kNone,      ///< not expecting bytes (folding, draining out)
        kFirstByte, ///< accepted, nothing heard yet
        kHeader,    ///< hello line / HTTP head incomplete
        kIdle,      ///< between payload chunks / keep-alive requests
    };

    struct Conn
    {
        int fd = -1;
        std::uint64_t token = 0; ///< stable id (fds are reused)
        ConnState state = ConnState::kSniff;
        net::ByteQueue in;
        net::ByteQueue out;
        net::HttpParser http;
        std::shared_ptr<Session> session;
        bool shed = false;            ///< over budget at accept
        bool close_after_flush = false;
        bool saw_eof = false;
        bool want_write = false; ///< EPOLLOUT currently armed
        bool read_armed = true;  ///< EPOLLIN currently armed

        /**
         * Out of tokens: EPOLLIN is disarmed (TCP backpressure does
         * the throttling) until throttle_deadline_ns, when the timer
         * wheel resumes the stream.
         */
        bool throttled = false;
        std::uint64_t throttle_deadline_ns = 0; ///< 0 = unarmed

        ReadDeadline read_kind = ReadDeadline::kNone;
        std::uint64_t read_deadline_ns = 0;  ///< 0 = unarmed
        std::uint64_t write_deadline_ns = 0; ///< 0 = unarmed
    };

    struct FoldDone
    {
        std::uint64_t token = 0;
        std::shared_ptr<Session> session;
        bool ok = false;
        std::string text; ///< report body or error message
    };

    /** Compact live-introspection JSON for `GET /v1/stats`. */
    std::string statsJson() const;

    void acceptReady();
    void connReadable(Conn &c);
    void connWritable(Conn &c);
    void pumpConn(Conn &c);
    void sniff(Conn &c);
    void serveHttp(Conn &c);
    std::string routeHttp(const net::HttpRequest &req,
                          bool &keep_alive);
    void streamBytes(Conn &c);
    void failSession(Conn &c, const std::string &why, bool protocol);
    void startFold(Conn &c);
    void finishFolds();
    void queueWrite(Conn &c, const std::string &bytes);
    void updateEpoll(Conn &c);
    void closeConn(std::uint64_t token);
    void shutdownAll();
    void dropConn(Conn &c, const std::string &why);

    // Deadline machinery.
    void armRead(Conn &c, ReadDeadline kind);
    void armWrite(Conn &c);
    int loopTimeoutMs(std::uint64_t now_ns) const;
    void expireDeadlines(std::uint64_t now_ns);
    void evictRead(Conn &c);

    // Checkpoint machinery.
    Status restoreState();
    void checkpointSessions(bool force);

    // QoS machinery (all no-ops while rk_ == nullptr).
    void qosTick(std::uint64_t now_ns);
    void throttleConn(Conn &c, std::uint64_t now_ns);

    ServerConfig config_;
    std::uint16_t bound_port_ = 0;
    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int wake_fd_ = -1; ///< eventfd: fold completions + stop requests

    std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
    std::map<int, std::uint64_t> fd_to_token_;
    std::uint64_t next_token_ = 1;
    std::uint64_t next_session_ = 1;

    /** Live sessions by id, for the HTTP results plane. */
    std::map<std::string, std::shared_ptr<Session>> sessions_;

    std::unique_ptr<fleet::ThreadPool> pool_;
    std::mutex folds_mu_;
    std::vector<FoldDone> folds_done_;

    std::atomic<bool> stop_requested_{false};
    bool draining_ = false;
    std::uint64_t drain_deadline_ns_ = 0;

    net::TimerWheel wheel_;
    std::vector<std::uint64_t> due_; ///< scratch for expiry sweeps

    /** Non-null only with config.qos: the admission controller. */
    std::unique_ptr<qos::Ratekeeper> rk_;
    std::uint64_t next_qos_tick_ns_ = 0; ///< 0 = qos off

    std::uint64_t started_ns_ = 0;      ///< steady clock at start()
    std::uint64_t started_wall_ms_ = 0; ///< wall clock at start()

    std::uint64_t next_ckpt_ns_ = 0; ///< 0 = checkpointing off
    /** Last checkpointed (records, state) per session id. */
    std::map<std::string, std::pair<std::uint64_t, SessionState>>
        ckpt_stamp_;
};

/**
 * Force-register the net.* connection/shedding metrics so snapshots
 * cover the schema before any server runs.
 */
void registerNetMetrics();

/**
 * Force-register the daemon.* session metrics so snapshots cover the
 * schema before any server runs.
 */
void registerDaemonMetrics();

} // namespace daemon
} // namespace dlw

#endif // DLW_DAEMON_SERVER_HH
