#include "synth/sizes.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dlw
{
namespace synth
{

FixedSize::FixedSize(BlockCount blocks)
    : blocks_(blocks)
{
    dlw_assert(blocks >= 1, "request size must be >= 1 block");
}

BlockCount
FixedSize::nextBlocks(Rng &)
{
    return blocks_;
}

double
FixedSize::meanBlocks() const
{
    return static_cast<double>(blocks_);
}

BimodalSize::BimodalSize(BlockCount small, BlockCount large,
                         double small_prob)
    : small_(small), large_(large), small_prob_(small_prob)
{
    dlw_assert(small >= 1 && large >= small, "bimodal sizes inverted");
    dlw_assert(small_prob >= 0.0 && small_prob <= 1.0,
               "bimodal probability out of range");
}

BlockCount
BimodalSize::nextBlocks(Rng &rng)
{
    return rng.bernoulli(small_prob_) ? small_ : large_;
}

double
BimodalSize::meanBlocks() const
{
    return small_prob_ * static_cast<double>(small_) +
           (1.0 - small_prob_) * static_cast<double>(large_);
}

LognormalSize::LognormalSize(BlockCount median_blocks, double sigma,
                             BlockCount max_blocks)
    : sigma_(sigma), max_blocks_(max_blocks)
{
    dlw_assert(median_blocks >= 1, "median size must be >= 1 block");
    dlw_assert(sigma > 0.0, "sigma must be positive");
    dlw_assert(max_blocks >= median_blocks, "cap below median");
    mu_ = std::log(static_cast<double>(median_blocks));
}

BlockCount
LognormalSize::nextBlocks(Rng &rng)
{
    const double v = rng.lognormal(mu_, sigma_);
    auto blocks = static_cast<BlockCount>(std::max(1.0, v + 0.5));
    return std::min(blocks, max_blocks_);
}

double
LognormalSize::meanBlocks() const
{
    // Mean of the unclipped lognormal; the cap makes the true mean
    // slightly smaller, which is acceptable for rate planning.
    return std::min(std::exp(mu_ + sigma_ * sigma_ / 2.0),
                    static_cast<double>(max_blocks_));
}

} // namespace synth
} // namespace dlw
