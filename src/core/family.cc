#include "core/family.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "stats/ecdf.hh"

namespace dlw
{
namespace core
{

const char *
tierName(UtilizationTier tier)
{
    switch (tier) {
      case UtilizationTier::Idle:
        return "idle";
      case UtilizationTier::Light:
        return "light";
      case UtilizationTier::Moderate:
        return "moderate";
      case UtilizationTier::Heavy:
        return "heavy";
      case UtilizationTier::Saturated:
        return "saturated";
    }
    return "unknown";
}

UtilizationTier
tierOf(double utilization)
{
    if (utilization < 0.01)
        return UtilizationTier::Idle;
    if (utilization < 0.10)
        return UtilizationTier::Light;
    if (utilization < 0.40)
        return UtilizationTier::Moderate;
    if (utilization < 0.80)
        return UtilizationTier::Heavy;
    return UtilizationTier::Saturated;
}

double
FamilyReport::tierFraction(UtilizationTier tier) const
{
    if (drives == 0)
        return 0.0;
    return static_cast<double>(
               tier_counts[static_cast<std::size_t>(tier)]) /
           static_cast<double>(drives);
}

double
giniCoefficient(std::vector<double> values)
{
    if (values.size() < 2)
        return 0.0;
    std::sort(values.begin(), values.end());
    double total = 0.0;
    double weighted = 0.0;
    const double n = static_cast<double>(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        dlw_assert(values[i] >= 0.0, "gini needs non-negative values");
        total += values[i];
        weighted += static_cast<double>(i + 1) * values[i];
    }
    if (total <= 0.0)
        return 0.0;
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

namespace
{

FamilyReport
finalize(std::vector<DriveSummary> summaries,
         std::vector<double> volumes)
{
    FamilyReport rep;
    rep.drives = summaries.size();
    rep.summaries = std::move(summaries);

    stats::Ecdf utils;
    for (const DriveSummary &s : rep.summaries) {
        ++rep.tier_counts[static_cast<std::size_t>(s.tier)];
        utils.add(s.mean_utilization);
    }
    if (!utils.empty()) {
        rep.util_p10 = utils.quantile(0.10);
        rep.util_p50 = utils.quantile(0.50);
        rep.util_p90 = utils.quantile(0.90);
    }
    rep.activity_gini = giniCoefficient(std::move(volumes));

    for (std::size_t run = 1; run <= rep.saturated_run_ccdf.size();
         ++run) {
        std::size_t n = 0;
        for (const DriveSummary &s : rep.summaries) {
            if (s.longest_saturated_run >= run)
                ++n;
        }
        rep.saturated_run_ccdf[run - 1] = rep.drives
            ? static_cast<double>(n) / static_cast<double>(rep.drives)
            : 0.0;
    }
    return rep;
}

} // anonymous namespace

FamilyReport
analyzeFamily(const std::vector<trace::HourTrace> &traces,
              double saturated_threshold)
{
    std::vector<DriveSummary> summaries;
    std::vector<double> volumes;
    summaries.reserve(traces.size());
    volumes.reserve(traces.size());

    for (const trace::HourTrace &t : traces) {
        DriveSummary s;
        s.drive_id = t.driveId();
        s.mean_utilization = t.meanUtilization();
        s.busy_hour_fraction = t.busyHourFraction(0.5);
        s.idle_hour_fraction = t.idleHourFraction();
        s.longest_saturated_run = t.longestBusyRun(saturated_threshold);
        const std::uint64_t total = t.totalRequests();
        std::uint64_t reads = 0;
        for (const trace::HourBucket &b : t.buckets())
            reads += b.reads;
        s.read_fraction = total
            ? static_cast<double>(reads) / static_cast<double>(total)
            : 0.0;
        s.requests_per_hour = t.hours()
            ? static_cast<double>(total) /
                  static_cast<double>(t.hours())
            : 0.0;
        s.tier = tierOf(s.mean_utilization);
        volumes.push_back(static_cast<double>(total));
        summaries.push_back(std::move(s));
    }
    return finalize(std::move(summaries), std::move(volumes));
}

FamilyReport
analyzeFamily(const trace::LifetimeTrace &trace)
{
    std::vector<DriveSummary> summaries;
    std::vector<double> volumes;
    summaries.reserve(trace.size());
    volumes.reserve(trace.size());

    for (const trace::LifetimeRecord &r : trace.records()) {
        DriveSummary s;
        s.drive_id = r.drive_id;
        s.mean_utilization = r.utilization();
        s.longest_saturated_run = r.longest_saturated_run;
        const double hours = static_cast<double>(r.power_on) /
                             static_cast<double>(kHour);
        s.busy_hour_fraction = hours > 0.0
            ? static_cast<double>(r.saturated_hours) / hours
            : 0.0;
        s.idle_hour_fraction = 0.0; // not recoverable from lifetime
        s.read_fraction = r.readFraction();
        s.requests_per_hour = r.requestsPerHour();
        s.tier = tierOf(s.mean_utilization);
        volumes.push_back(static_cast<double>(r.total()));
        summaries.push_back(std::move(s));
    }
    return finalize(std::move(summaries), std::move(volumes));
}

std::vector<std::array<double, 3>>
hourlyPercentileBands(const std::vector<trace::HourTrace> &traces,
                      std::size_t hours)
{
    dlw_assert(!traces.empty(), "empty population");
    for (const trace::HourTrace &t : traces) {
        dlw_assert(t.hours() >= hours,
                   "trace shorter than requested band length");
    }

    std::vector<std::array<double, 3>> bands;
    bands.reserve(hours);
    for (std::size_t h = 0; h < hours; ++h) {
        stats::Ecdf e;
        for (const trace::HourTrace &t : traces)
            e.add(static_cast<double>(t.at(h).total()));
        bands.push_back({e.quantile(0.10), e.quantile(0.50),
                         e.quantile(0.90)});
    }
    return bands;
}

} // namespace core
} // namespace dlw
