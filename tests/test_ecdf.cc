/**
 * @file
 * Unit tests for stats/ecdf.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "stats/ecdf.hh"

namespace dlw
{
namespace stats
{
namespace
{

TEST(Ecdf, QuantilesOfSmallSample)
{
    Ecdf e;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        e.add(v);
    EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(e.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(e.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(e.quantile(0.25), 2.0);
    // Interpolation between order statistics.
    EXPECT_DOUBLE_EQ(e.quantile(0.125), 1.5);
}

TEST(Ecdf, CdfAndCcdf)
{
    Ecdf e;
    for (double v : {1.0, 2.0, 2.0, 4.0})
        e.add(v);
    EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(e.cdf(2.0), 0.75);
    EXPECT_DOUBLE_EQ(e.cdf(10.0), 1.0);
    EXPECT_DOUBLE_EQ(e.ccdf(2.0), 0.25);
}

TEST(Ecdf, MinMaxMean)
{
    Ecdf e;
    e.add(3.0);
    e.add(-1.0);
    e.add(4.0);
    EXPECT_DOUBLE_EQ(e.min(), -1.0);
    EXPECT_DOUBLE_EQ(e.max(), 4.0);
    EXPECT_DOUBLE_EQ(e.mean(), 2.0);
}

TEST(Ecdf, SingleSample)
{
    Ecdf e;
    e.add(7.0);
    EXPECT_DOUBLE_EQ(e.quantile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(e.quantile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(e.quantile(1.0), 7.0);
}

TEST(Ecdf, CurveIsMonotone)
{
    Ecdf e;
    Rng rng(1);
    for (int i = 0; i < 1000; ++i)
        e.add(rng.normal(0.0, 1.0));
    auto curve = e.curve(21);
    ASSERT_EQ(curve.size(), 21u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_LE(curve[i - 1].first, curve[i].first);
        EXPECT_LT(curve[i - 1].second, curve[i].second);
    }
    EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Ecdf, AddAllMatchesLoop)
{
    std::vector<double> xs = {5.0, 1.0, 3.0};
    Ecdf a, b;
    a.addAll(xs);
    for (double x : xs)
        b.add(x);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_DOUBLE_EQ(a.median(), b.median());
}

TEST(Ecdf, ReservoirCapsRetention)
{
    Ecdf e(100, 9);
    for (int i = 0; i < 10000; ++i)
        e.add(static_cast<double>(i));
    EXPECT_EQ(e.count(), 10000u);
    EXPECT_EQ(e.retained(), 100u);
}

TEST(Ecdf, ReservoirIsRepresentative)
{
    // Median of uniform 0..1 should survive heavy subsampling.
    Ecdf e(2000, 10);
    Rng rng(11);
    for (int i = 0; i < 200000; ++i)
        e.add(rng.uniform());
    EXPECT_NEAR(e.median(), 0.5, 0.05);
    EXPECT_NEAR(e.quantile(0.9), 0.9, 0.05);
}

TEST(Ecdf, InterleavedAddAndQuery)
{
    // Queries must not corrupt later inserts (lazy sort).
    Ecdf e;
    e.add(5.0);
    EXPECT_DOUBLE_EQ(e.median(), 5.0);
    e.add(1.0);
    EXPECT_DOUBLE_EQ(e.median(), 3.0);
    e.add(9.0);
    EXPECT_DOUBLE_EQ(e.median(), 5.0);
    EXPECT_DOUBLE_EQ(e.min(), 1.0);
}

TEST(Ecdf, MergeUncappedIsExactUnion)
{
    Ecdf all, a, b;
    for (int i = 0; i < 200; ++i) {
        const double v = static_cast<double>((i * 37) % 101);
        all.add(v);
        (i % 3 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.sorted(), all.sorted());
    EXPECT_DOUBLE_EQ(a.quantile(0.25), all.quantile(0.25));
    EXPECT_DOUBLE_EQ(a.cdf(50.0), all.cdf(50.0));
}

TEST(Ecdf, MergeEmptyIsNoop)
{
    Ecdf a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.median(), 1.0);
}

TEST(Ecdf, MergeIntoCappedKeepsPopulationCount)
{
    Ecdf capped(16, 7);
    for (int i = 0; i < 100; ++i)
        capped.add(static_cast<double>(i));
    Ecdf other;
    for (int i = 0; i < 50; ++i)
        other.add(static_cast<double>(i));
    capped.merge(other);
    EXPECT_EQ(capped.count(), 150u);
    EXPECT_EQ(capped.retained(), 16u);
}

TEST(EcdfDeathTest, EmptyQuantile)
{
    Ecdf e;
    EXPECT_DEATH(e.quantile(0.5), "empty");
    EXPECT_DEATH(e.min(), "empty");
}

TEST(EcdfDeathTest, QuantileRange)
{
    Ecdf e;
    e.add(1.0);
    EXPECT_DEATH(e.quantile(1.5), "out of range");
}

} // anonymous namespace
} // namespace stats
} // namespace dlw
