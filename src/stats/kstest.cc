#include "stats/kstest.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dlw
{
namespace stats
{

double
kolmogorovSurvival(double t)
{
    if (t <= 0.0)
        return 1.0;
    // Q(t) = 2 * sum_{k=1..inf} (-1)^(k-1) exp(-2 k^2 t^2)
    double sum = 0.0;
    double sign = 1.0;
    for (int k = 1; k <= 100; ++k) {
        const double term = std::exp(-2.0 * k * k * t * t);
        sum += sign * term;
        sign = -sign;
        if (term < 1e-12)
            break;
    }
    return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult
ksOneSample(const std::vector<double> &xs,
            const std::function<double(double)> &cdf)
{
    dlw_assert(!xs.empty(), "K-S test needs data");
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());

    const double n = static_cast<double>(sorted.size());
    double d = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double f = cdf(sorted[i]);
        const double lo = static_cast<double>(i) / n;
        const double hi = static_cast<double>(i + 1) / n;
        d = std::max(d, std::max(std::fabs(f - lo), std::fabs(hi - f)));
    }

    KsResult r;
    r.statistic = d;
    r.effective_n = n;
    const double t = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * d;
    r.p_value = kolmogorovSurvival(t);
    return r;
}

KsResult
ksTwoSample(const std::vector<double> &xs, const std::vector<double> &ys)
{
    dlw_assert(!xs.empty() && !ys.empty(), "K-S test needs data");
    std::vector<double> a = xs;
    std::vector<double> b = ys;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    const double na = static_cast<double>(a.size());
    const double nb = static_cast<double>(b.size());
    std::size_t i = 0, j = 0;
    double d = 0.0;
    while (i < a.size() && j < b.size()) {
        const double x = std::min(a[i], b[j]);
        while (i < a.size() && a[i] <= x)
            ++i;
        while (j < b.size() && b[j] <= x)
            ++j;
        const double fa = static_cast<double>(i) / na;
        const double fb = static_cast<double>(j) / nb;
        d = std::max(d, std::fabs(fa - fb));
    }

    KsResult r;
    r.statistic = d;
    r.effective_n = na * nb / (na + nb);
    const double en = std::sqrt(r.effective_n);
    const double t = (en + 0.12 + 0.11 / en) * d;
    r.p_value = kolmogorovSurvival(t);
    return r;
}

} // namespace stats
} // namespace dlw
