/**
 * @file
 * Unit tests for the QoS layer: tag vocabulary, token-bucket
 * determinism, AIMD convergence of the ratekeeper, priority-lane
 * dispatch ordering in the thread pool, and the contract that a
 * default (or bulk) tag never changes a fleet report byte.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "fleet/pipeline.hh"
#include "fleet/pool.hh"
#include "qos/ratekeeper.hh"
#include "qos/tag.hh"

namespace dlw
{
namespace qos
{
namespace
{

constexpr std::uint64_t kMs = 1'000'000;  // ns
constexpr std::uint64_t kSecNs = 1'000'000'000;

// ---- Tag vocabulary --------------------------------------------

TEST(Tag, ClassNamesRoundTrip)
{
    for (WorkClass k : {WorkClass::kInteractive, WorkClass::kBulk,
                        WorkClass::kBackground}) {
        WorkClass parsed;
        ASSERT_TRUE(parseWorkClass(workClassName(k), parsed));
        EXPECT_EQ(parsed, k);
    }
    WorkClass parsed;
    EXPECT_FALSE(parseWorkClass("batch", parsed));
    EXPECT_FALSE(parseWorkClass("", parsed));
    EXPECT_FALSE(parseWorkClass("Interactive", parsed));
}

TEST(Tag, InternIsStableAndAnonIsZero)
{
    EXPECT_EQ(internTenant(""), 0u);
    EXPECT_EQ(internTenant("anon"), 0u);
    const std::uint32_t a = internTenant("qos-test-tenant-a");
    const std::uint32_t b = internTenant("qos-test-tenant-b");
    EXPECT_NE(a, 0u);
    EXPECT_NE(a, b);
    EXPECT_EQ(internTenant("qos-test-tenant-a"), a);
    EXPECT_EQ(tenantName(a), "qos-test-tenant-a");
    EXPECT_EQ(tenantName(0), "anon");
}

TEST(Tag, DefaultTagAndPacking)
{
    TagId def;
    EXPECT_TRUE(def.isDefault());
    TagId bulk{0, WorkClass::kBulk};
    EXPECT_FALSE(bulk.isDefault());
    EXPECT_NE(def.packed(), bulk.packed());
    TagId other{internTenant("qos-test-tenant-a"),
                WorkClass::kBulk};
    EXPECT_NE(other.packed(), bulk.packed());
    EXPECT_EQ(bulk, (TagId{0, WorkClass::kBulk}));
}

// ---- TokenBucket -----------------------------------------------

TEST(TokenBucket, AdmitsBurstThenDelays)
{
    TokenBucket b;
    b.setRate(1000); // burst = 1000 records
    std::uint64_t now = kSecNs;
    ASSERT_TRUE(b.admit(now));
    b.charge(1000); // exactly the burst: balance drops to 0
    EXPECT_TRUE(b.admit(now));
    b.charge(500); // into debt
    EXPECT_FALSE(b.admit(now));
    // 500 records of debt at 1000 records/s = 500 ms to surface.
    EXPECT_EQ(b.resumeDelayNs(now), 500 * kMs);
    // After exactly that long the bucket admits again.
    now += 500 * kMs;
    EXPECT_TRUE(b.admit(now));
}

TEST(TokenBucket, ZeroRateIsUnlimited)
{
    TokenBucket b;
    std::uint64_t now = kSecNs;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(b.admit(now));
        b.charge(1u << 20);
        now += kMs;
    }
}

TEST(TokenBucket, IdenticalCallSequencesAreIdentical)
{
    // The determinism contract: decisions are a pure function of the
    // (rate, timestamp, charge) sequence.  Two buckets fed the same
    // sequence agree on every verdict and every balance.
    TokenBucket a, b;
    a.setRate(7777);
    b.setRate(7777);
    std::uint64_t now = 5 * kSecNs;
    for (int i = 0; i < 2000; ++i) {
        now += (i % 13) * kMs / 7;
        const bool va = a.admit(now);
        const bool vb = b.admit(now);
        ASSERT_EQ(va, vb) << "step " << i;
        if (va) {
            a.charge(static_cast<std::uint64_t>(i % 97));
            b.charge(static_cast<std::uint64_t>(i % 97));
        }
        ASSERT_EQ(a.balanceMicro(), b.balanceMicro()) << "step " << i;
        ASSERT_EQ(a.resumeDelayNs(now), b.resumeDelayNs(now));
    }
}

TEST(TokenBucket, ThroughputBoundHoldsUnderAnyThreadCount)
{
    // Many threads hammering one ratekeeper cannot push more records
    // through a bulk tag than rate * time + burst + one in-flight
    // batch per thread, no matter how the calls interleave.
    for (std::size_t threads : {std::size_t{1}, std::size_t{4},
                                std::size_t{8}}) {
        RatekeeperConfig cfg;
        cfg.max_rate_per_sec = 10'000;
        Ratekeeper rk(cfg);
        const TagId tag{internTenant("qos-bound-tenant"),
                        WorkClass::kBulk};
        // Prime the tag and pin its bucket at max_rate.
        rk.admit(tag, kSecNs);
        rk.tick(kSecNs, QosSignals{});

        const std::uint64_t kBatch = 500;
        const std::uint64_t window_ns = 2 * kSecNs;
        std::atomic<std::uint64_t> admitted{0};
        std::vector<std::thread> ts;
        for (std::size_t t = 0; t < threads; ++t) {
            ts.emplace_back([&rk, &admitted, tag, window_ns] {
                // Virtual clock: every thread sweeps the same 2 s
                // window in 1 ms steps, so the test is time-free.
                for (std::uint64_t now = kSecNs;
                     now < kSecNs + window_ns; now += kMs) {
                    if (rk.admit(tag, now) == Admission::kAdmit) {
                        rk.charge(tag, kBatch);
                        admitted.fetch_add(kBatch);
                    }
                }
            });
        }
        for (auto &t : ts)
            t.join();
        // rate * 2 s + 1 s burst + one optimistic batch per thread.
        const std::uint64_t bound =
            10'000 * 2 + 10'000 + threads * kBatch;
        EXPECT_LE(admitted.load(), bound) << threads << " threads";
        EXPECT_GT(admitted.load(), 0u);
    }
}

// ---- Ratekeeper AIMD -------------------------------------------

QosSignals
pressured()
{
    QosSignals s;
    s.queue_depth = 64; // 4x the default target of 16
    s.fold_p95_us = 200'000;
    s.active_sessions = 10;
    return s;
}

TEST(Ratekeeper, ConvergesDownUnderPressureAndRecovers)
{
    RatekeeperConfig cfg;
    Ratekeeper rk(cfg);
    const TagId bulk{internTenant("qos-aimd-tenant"),
                     WorkClass::kBulk};
    std::uint64_t now = kSecNs;
    rk.admit(bulk, now); // make the tag active

    EXPECT_EQ(rk.limitPerSec(WorkClass::kBulk),
              cfg.max_rate_per_sec);

    // Sustained pressure: multiplicative decrease walks the bulk
    // and background limits to the floor; interactive never moves.
    for (int i = 0; i < 400; ++i) {
        now += cfg.tick_ns;
        rk.tick(now, pressured());
    }
    EXPECT_GT(rk.pressureMilli(), 1000);
    EXPECT_EQ(rk.limitPerSec(WorkClass::kBulk),
              cfg.min_rate_per_sec);
    EXPECT_EQ(rk.limitPerSec(WorkClass::kBackground),
              cfg.min_rate_per_sec);
    EXPECT_EQ(rk.limitPerSec(WorkClass::kInteractive),
              cfg.max_rate_per_sec);

    // Pressure clears: additive increase climbs back to the cap.
    const std::uint64_t ticks_to_max =
        cfg.max_rate_per_sec / cfg.additive_step_per_sec + 20;
    for (std::uint64_t i = 0; i < ticks_to_max; ++i) {
        now += cfg.tick_ns;
        rk.tick(now, QosSignals{});
        rk.admit(bulk, now); // keep the tag from idling out
    }
    EXPECT_EQ(rk.limitPerSec(WorkClass::kBulk),
              cfg.max_rate_per_sec);
    EXPECT_EQ(rk.limitPerSec(WorkClass::kBackground),
              cfg.max_rate_per_sec);
}

TEST(Ratekeeper, BackgroundYieldsHarderThanBulk)
{
    RatekeeperConfig cfg;
    Ratekeeper rk(cfg);
    std::uint64_t now = kSecNs;
    // A handful of pressure ticks: background (x3/4 per tick) must
    // fall below bulk (x7/8 per tick) before either hits the floor.
    for (int i = 0; i < 10; ++i) {
        now += cfg.tick_ns;
        rk.tick(now, pressured());
    }
    EXPECT_LT(rk.limitPerSec(WorkClass::kBackground),
              rk.limitPerSec(WorkClass::kBulk));
    EXPECT_LT(rk.limitPerSec(WorkClass::kBulk),
              rk.limitPerSec(WorkClass::kInteractive));
}

TEST(Ratekeeper, InteractiveNeverDelayedOrShed)
{
    RatekeeperConfig cfg;
    Ratekeeper rk(cfg);
    const TagId inter{internTenant("qos-inter-tenant"),
                      WorkClass::kInteractive};
    std::uint64_t now = kSecNs;
    for (int i = 0; i < 400; ++i) {
        now += cfg.tick_ns;
        rk.tick(now, pressured());
    }
    EXPECT_EQ(rk.admit(inter, now), Admission::kAdmit);
    EXPECT_EQ(rk.admitSession(inter, now), Admission::kAdmit);
    rk.charge(inter, 1u << 30); // even absurd volume: still admitted
    EXPECT_EQ(rk.admit(inter, now), Admission::kAdmit);
}

TEST(Ratekeeper, ShedsBulkOnlyAtFloorUnderSustainedPressure)
{
    RatekeeperConfig cfg;
    Ratekeeper rk(cfg);
    const TagId bulk{internTenant("qos-shed-tenant"),
                     WorkClass::kBulk};
    std::uint64_t now = kSecNs;

    // Calm: sessions always admitted.
    EXPECT_EQ(rk.admitSession(bulk, now), Admission::kAdmit);

    // Deep sustained pressure: limit reaches the floor and the
    // smoothed pressure crosses the shed threshold -> new bulk
    // sessions shed, existing ones merely throttle.
    for (int i = 0; i < 400; ++i) {
        now += cfg.tick_ns;
        rk.tick(now, pressured());
    }
    ASSERT_EQ(rk.limitPerSec(WorkClass::kBulk),
              cfg.min_rate_per_sec);
    ASSERT_GT(rk.pressureMilli(), cfg.shed_pressure_milli);
    EXPECT_EQ(rk.admitSession(bulk, now), Admission::kShed);
}

TEST(Ratekeeper, FairShareSplitsClassLimitAcrossTags)
{
    RatekeeperConfig cfg;
    cfg.max_rate_per_sec = 1000;
    Ratekeeper rk(cfg);
    const TagId a{internTenant("qos-share-a"), WorkClass::kBulk};
    const TagId b{internTenant("qos-share-b"), WorkClass::kBulk};
    std::uint64_t now = kSecNs;
    rk.admit(a, now);
    rk.admit(b, now);
    rk.tick(now + cfg.tick_ns, QosSignals{});
    now += cfg.tick_ns;

    // Two active bulk tags, 1000 records/s class limit: each tag's
    // bucket refills at ~500/s, so a tag that just burned 10 s worth
    // of its fair share delays for a deterministic, rate-derived
    // time while the other tag still admits.
    ASSERT_EQ(rk.admit(a, now), Admission::kAdmit);
    rk.charge(a, 6000);
    EXPECT_EQ(rk.admit(a, now), Admission::kDelay);
    EXPECT_EQ(rk.admit(b, now), Admission::kAdmit);
    const std::uint64_t d = rk.resumeDelayNs(a, now);
    // Debt is clamped to two bursts (2 x 500 records at 500/s), so
    // the resume delay is exactly 2 s — 1000 splits evenly across
    // the two tags, so the remainder rotation cannot perturb it.
    EXPECT_EQ(d, 2 * kSecNs);
}

TEST(Ratekeeper, IdenticalCallSequencesMakeIdenticalDecisions)
{
    // Determinism across instances: same config, same sequence of
    // tick/admit/charge with the same timestamps -> same verdicts
    // and same limits, bit for bit.
    RatekeeperConfig cfg;
    Ratekeeper r1(cfg), r2(cfg);
    const TagId tags[] = {
        {internTenant("qos-det-a"), WorkClass::kBulk},
        {internTenant("qos-det-b"), WorkClass::kBackground},
        {internTenant("qos-det-c"), WorkClass::kBulk},
    };
    std::uint64_t now = kSecNs;
    for (int i = 0; i < 500; ++i) {
        now += cfg.tick_ns;
        const QosSignals sig =
            (i / 50) % 2 ? pressured() : QosSignals{};
        r1.tick(now, sig);
        r2.tick(now, sig);
        const TagId &tag = tags[i % 3];
        const Admission v1 = r1.admit(tag, now);
        const Admission v2 = r2.admit(tag, now);
        ASSERT_EQ(v1, v2) << "step " << i;
        if (v1 == Admission::kAdmit) {
            r1.charge(tag, static_cast<std::uint64_t>(i) * 37 % 991);
            r2.charge(tag, static_cast<std::uint64_t>(i) * 37 % 991);
        }
        ASSERT_EQ(r1.resumeDelayNs(tag, now),
                  r2.resumeDelayNs(tag, now));
        ASSERT_EQ(r1.admitSession(tag, now),
                  r2.admitSession(tag, now));
    }
    for (WorkClass k : {WorkClass::kInteractive, WorkClass::kBulk,
                        WorkClass::kBackground})
        EXPECT_EQ(r1.limitPerSec(k), r2.limitPerSec(k));
    EXPECT_EQ(r1.pressureMilli(), r2.pressureMilli());
}

// ---- Priority lanes in the pool --------------------------------

TEST(PriorityLanes, InteractiveDispatchesBeforeBulkBeforeBackground)
{
    fleet::ThreadPool pool(1);

    // Park the single worker so the lanes fill while nothing runs.
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    pool.submit([&] {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
    });
    // Give the worker a moment to pick up the parking task.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::vector<int> order;
    std::mutex order_mu;
    auto record = [&order, &order_mu](int lane) {
        return [&order, &order_mu, lane] {
            std::lock_guard<std::mutex> lock(order_mu);
            order.push_back(lane);
        };
    };
    // Submit in worst-case order: background first, interactive last.
    for (int i = 0; i < 4; ++i)
        pool.submit(record(2), qos::WorkClass::kBackground);
    for (int i = 0; i < 4; ++i)
        pool.submit(record(1), qos::WorkClass::kBulk);
    for (int i = 0; i < 4; ++i)
        pool.submit(record(0), qos::WorkClass::kInteractive);

    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    pool.wait();

    ASSERT_EQ(order.size(), 12u);
    // Strict lane priority on a single worker: the recorded order
    // must be non-decreasing lane numbers despite submission order.
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
        << ::testing::PrintToString(order);
    EXPECT_EQ(std::count(order.begin(), order.end(), 0), 4);
    EXPECT_EQ(std::count(order.begin(), order.end(), 1), 4);
}

// ---- Tagged fleet runs stay byte-identical ---------------------

TEST(TagPlumbing, FleetReportIdenticalUnderAnyTagAndLane)
{
    // The tag rides every batch and picks the pool lane, but it must
    // never change a single report byte: scheduling order is not
    // part of any result.
    fleet::FleetConfig base;
    base.drives = 6;
    base.threads = 2;
    base.preset = fleet::FleetPreset::Mixed;
    base.seed = 11;
    base.rate = 30.0;
    base.window = 10 * kSec;

    const fleet::FleetResult ref = runFleet(base);
    const std::string ref_report = renderFleetReport(base, ref);

    for (WorkClass k : {WorkClass::kBulk, WorkClass::kBackground}) {
        fleet::FleetConfig tagged = base;
        tagged.tag = TagId{internTenant("qos-fleet-tenant"), k};
        const fleet::FleetResult out = runFleet(tagged);
        EXPECT_EQ(renderFleetReport(tagged, out), ref_report)
            << "class " << workClassName(k);
    }
}

} // namespace
} // namespace qos
} // namespace dlw
