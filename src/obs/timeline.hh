/**
 * @file
 * Timeline tracing: a lock-free, per-thread, fixed-capacity
 * ring-buffer event recorder (a "flight recorder") and its Chrome
 * trace_event JSON exporter.
 *
 * The metrics registry (obs/metrics.hh) answers "how much / how
 * often"; the timeline answers *when*.  The paper's central claim —
 * the same drive looks bursty at milliseconds and placid at hours —
 * is a statement about time structure, and the pipeline has the same
 * property: aggregate counters cannot show a shard stalling behind a
 * slow sibling, a retry storm, or a queue backing up.  The timeline
 * records discrete events on a shared clock so those moments are
 * visible in a trace viewer.
 *
 * Event kinds:
 *
 *  - begin/end  duration events; ScopedSpan emits them automatically
 *               when the timeline is armed, so every instrumented
 *               pipeline stage shows up with no call-site changes
 *  - instant    point events (task submitted, task stolen, retry,
 *               backoff, batch decoded)
 *  - counter    sampled value tracks (queue depth, peak batch bytes,
 *               process RSS) — rendered as counter plots
 *
 * Cost discipline matches the registry: while disarmed every emit is
 * one relaxed atomic load that short-circuits.  While armed, an emit
 * is a clock read plus a store into this thread's own ring buffer —
 * no locks, no allocation, no sharing; when the ring is full the
 * oldest event is overwritten (flight-recorder semantics), so memory
 * is bounded no matter how long the run.
 *
 * Event names must be string literals (or interned via
 * internTimelineName); the recorder stores the pointer, never the
 * bytes.  Instant/counter names are linted against docs/METRICS.md
 * by scripts/check_metrics_docs.sh, like metric names — keep the
 * name literal on the same line as the obs::emitInstant( /
 * obs::emitCounter( call.
 *
 * Snapshots are precise once writers have quiesced (what dlwtool
 * does: export happens after the command returns).  Snapshotting
 * while other threads still emit is also safe AND coherent: slots
 * are field-atomic and the reader discards anything the producer
 * may have lapped mid-copy, so a live snapshot (GET /v1/timeline on
 * a running daemon) returns only events that were really recorded —
 * it may just miss the very newest ones.  Only the async-signal
 * crash-dump path (timeline_export.hh) keeps the weaker bargain of
 * possibly mixing fields from two events — a mostly-right trace of
 * a crashing process beats no trace.
 */

#ifndef DLW_OBS_TIMELINE_HH
#define DLW_OBS_TIMELINE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dlw
{
namespace obs
{

/** What one timeline event marks. */
enum class TimelineEventKind : std::uint8_t
{
    kBegin,   ///< duration start ("B")
    kEnd,     ///< duration end ("E")
    kInstant, ///< point event ("i")
    kCounter, ///< counter-track sample ("C")
};

/** "begin" / "end" / "instant" / "counter". */
const char *timelineEventKindName(TimelineEventKind kind);

/**
 * One recorded event.  32 bytes; name points at a string literal or
 * an interned string, never owned.
 */
struct TimelineEvent
{
    const char *name = "";
    double value = 0.0;     ///< counter sample (kCounter only)
    std::uint64_t ts_ns = 0; ///< nanoseconds since the timeline epoch
    std::uint32_t tid = 0;   ///< dense per-thread id (0 = first seen)
    TimelineEventKind kind = TimelineEventKind::kInstant;
};

namespace detail
{

extern std::atomic<int> g_timeline_armed;

/** True while the timeline records (one relaxed load). */
inline bool
timelineArmed()
{
    return g_timeline_armed.load(std::memory_order_relaxed) != 0;
}

/** Armed slow path: stamp the clock and write this thread's ring. */
void timelineEmit(const char *name, TimelineEventKind kind,
                  double value);

} // namespace detail

/** Default per-thread ring capacity (events). */
constexpr std::size_t kDefaultTimelineCapacity = std::size_t(1) << 16;

/**
 * Arm the recorder.  Rings are created lazily, per thread, with
 * `events_per_thread` slots; threads whose ring already exists keep
 * their original capacity.  Nestable like obs::enable().
 */
void enableTimeline(
    std::size_t events_per_thread = kDefaultTimelineCapacity);

/** Detach one sink; recording stops when the last one detaches. */
void disableTimeline();

/** True while at least one timeline sink is attached. */
bool timelineEnabled();

/** Record an instant event (no-op while disarmed). */
inline void
emitInstant(const char *name)
{
    if (!detail::timelineArmed())
        return;
    detail::timelineEmit(name, TimelineEventKind::kInstant, 0.0);
}

/** Record a counter-track sample (no-op while disarmed). */
inline void
emitCounter(const char *name, double value)
{
    if (!detail::timelineArmed())
        return;
    detail::timelineEmit(name, TimelineEventKind::kCounter, value);
}

/** Record a duration-begin event (no-op while disarmed). */
inline void
emitBegin(const char *name)
{
    if (!detail::timelineArmed())
        return;
    detail::timelineEmit(name, TimelineEventKind::kBegin, 0.0);
}

/** Record a duration-end event (no-op while disarmed). */
inline void
emitEnd(const char *name)
{
    if (!detail::timelineArmed())
        return;
    detail::timelineEmit(name, TimelineEventKind::kEnd, 0.0);
}

/**
 * Copy a dynamically-built name into process-lifetime storage so it
 * can be used as a TimelineEvent name.  Interns: the same string
 * always returns the same pointer.
 */
const char *internTimelineName(const std::string &name);

/**
 * The single-producer ring at the recorder's core, exposed for
 * direct use in tests.  Exactly one thread may push; any thread may
 * snapshot at any time — including while the producer is mid-storm,
 * which is what GET /v1/timeline does against a live daemon.
 *
 * Concurrency contract: slots are stored as relaxed atomics (so a
 * racing reader never tears a field) and snapshotInto() re-reads the
 * head after copying, discarding any slot the producer may have
 * lapped during the copy.  Every event a snapshot returns is
 * therefore a coherent event that was really pushed; a snapshot
 * taken while the producer wraps may just return fewer of them.
 * Once the producer quiesces, snapshots are exact.
 */
class TimelineRing
{
  public:
    TimelineRing(std::size_t capacity, std::uint32_t tid);

    /** Overwrites the oldest event once the ring is full. */
    void push(const char *name, TimelineEventKind kind, double value,
              std::uint64_t ts_ns);

    /** Oldest-first copy of the retained events. */
    void snapshotInto(std::vector<TimelineEvent> &out) const;

    /** Events pushed in total (>= retained). */
    std::uint64_t pushed() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /** Events lost to overwriting. */
    std::uint64_t dropped() const;

    std::size_t capacity() const { return slots_.size(); }
    std::uint32_t tid() const { return tid_; }

    /** Forget everything (producer must be quiescent). */
    void clear() { head_.store(0, std::memory_order_release); }

    /**
     * Raw slot read by absolute push index (crash-dump path; a slot
     * the producer is concurrently overwriting may mix fields from
     * two events, but each field is a value some push really wrote).
     */
    TimelineEvent eventAt(std::uint64_t i) const
    {
        const Slot &s = slots_[i % slots_.size()];
        TimelineEvent e;
        e.name = s.name.load(std::memory_order_relaxed);
        e.value = s.value.load(std::memory_order_relaxed);
        e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
        e.tid = s.tid.load(std::memory_order_relaxed);
        e.kind = static_cast<TimelineEventKind>(
            s.kind.load(std::memory_order_relaxed));
        return e;
    }

  private:
    /**
     * One event, stored field-atomic so a reader racing the producer
     * reads whole fields, never torn bytes.  All accesses relaxed;
     * the head_ release/acquire pair orders slot contents against
     * the indices a reader trusts.
     */
    struct Slot
    {
        std::atomic<const char *> name{""};
        std::atomic<double> value{0.0};
        std::atomic<std::uint64_t> ts_ns{0};
        std::atomic<std::uint32_t> tid{0};
        std::atomic<std::uint8_t> kind{0};
    };

    std::vector<Slot> slots_;
    std::atomic<std::uint64_t> head_{0}; ///< total events ever pushed
    std::uint32_t tid_;
};

/**
 * One consistent read of every thread's ring.
 */
struct TimelineSnapshot
{
    /** All retained events, ascending by ts_ns (ties keep tid order). */
    std::vector<TimelineEvent> events;
    std::uint64_t dropped = 0; ///< events lost to ring wraparound
    std::uint32_t threads = 0; ///< rings that recorded at least once
};

/** Snapshot every ring (precise once writers quiesce). */
TimelineSnapshot timelineSnapshot();

/**
 * Nanoseconds since the timeline epoch — the same clock every
 * recorded event's ts_ns uses.  This is what a server echoes in its
 * stream ack and what a client samples at ack receipt: subtracting
 * the two gives the offset that reprojects one side's spans onto the
 * other's timeline.  Before the first enableTimeline() the epoch is
 * the steady-clock zero, so the value degrades to raw monotonic ns.
 */
std::uint64_t timelineNowNs();

/** Discard all recorded events; rings and thread ids survive. */
void resetTimeline();

namespace detail
{

/**
 * Unlocked ring-registry access for the async-signal-safe crash
 * dump (timeline_export.cc).  Best-effort by design: no mutex, so a
 * ring registered at this very instant may be missed.
 */
std::size_t timelineRingCount();
const TimelineRing *timelineRingAt(std::size_t i);

} // namespace detail

} // namespace obs
} // namespace dlw

#endif // DLW_OBS_TIMELINE_HH
