#include "core/utilization.hh"

#include <algorithm>

#include "common/logging.hh"
#include "stats/ecdf.hh"

namespace dlw
{
namespace core
{

namespace
{

UtilizationProfile
profileFromSeries(std::vector<double> series, Tick bin_width)
{
    UtilizationProfile p;
    p.bin_width = bin_width;
    p.series = std::move(series);
    if (p.series.empty())
        return p;

    stats::Ecdf ecdf;
    std::size_t idle = 0, saturated = 0;
    double sum = 0.0;
    for (double u : p.series) {
        dlw_assert(u >= -1e-9 && u <= 1.0 + 1e-9,
                   "utilization outside [0, 1]");
        ecdf.add(u);
        sum += u;
        if (u <= 0.0)
            ++idle;
        if (u >= 0.9)
            ++saturated;
        p.peak = std::max(p.peak, u);
    }
    const double n = static_cast<double>(p.series.size());
    p.mean = sum / n;
    p.median = ecdf.median();
    p.p95 = ecdf.quantile(0.95);
    p.idle_fraction = static_cast<double>(idle) / n;
    p.saturated_fraction = static_cast<double>(saturated) / n;
    return p;
}

} // anonymous namespace

UtilizationProfile
utilizationProfile(const disk::ServiceLog &log, Tick bin_width)
{
    dlw_assert(bin_width > 0, "bin width must be positive");
    stats::BinnedSeries s = log.utilizationSeries(bin_width);
    // Clip FP residue from interval splitting.
    std::vector<double> v = s.values();
    for (double &x : v)
        x = std::clamp(x, 0.0, 1.0);
    return profileFromSeries(std::move(v), bin_width);
}

UtilizationProfile
utilizationProfile(const trace::HourTrace &trace)
{
    std::vector<double> v;
    v.reserve(trace.hours());
    for (const trace::HourBucket &b : trace.buckets())
        v.push_back(std::clamp(b.utilization(), 0.0, 1.0));
    return profileFromSeries(std::move(v), kHour);
}

std::vector<UtilizationProfile>
utilizationAcrossScales(const disk::ServiceLog &log,
                        const std::vector<Tick> &widths)
{
    std::vector<UtilizationProfile> out;
    out.reserve(widths.size());
    for (Tick w : widths)
        out.push_back(utilizationProfile(log, w));
    return out;
}

} // namespace core
} // namespace dlw
