#include "trace/lifetime.hh"

#include "common/logging.hh"

namespace dlw
{
namespace trace
{

LifetimeTrace::LifetimeTrace(std::string family)
    : family_(std::move(family))
{
}

void
LifetimeTrace::append(LifetimeRecord rec)
{
    records_.push_back(std::move(rec));
}

const LifetimeRecord &
LifetimeTrace::at(std::size_t i) const
{
    dlw_assert(i < records_.size(), "record index out of range");
    return records_[i];
}

Status
LifetimeTrace::checkValid() const
{
    auto complain = [&](const std::string &id, const std::string &msg) {
        return Status::corruptData("lifetime record '" + id + "': " +
                                   msg);
    };

    for (const LifetimeRecord &r : records_) {
        if (r.power_on < 0)
            return complain(r.drive_id, "negative power-on time");
        if (r.busy < 0 || r.busy > r.power_on)
            return complain(r.drive_id, "busy time exceeds power-on");
        if (r.reads == 0 && r.read_blocks != 0)
            return complain(r.drive_id, "read blocks without reads");
        if (r.writes == 0 && r.write_blocks != 0)
            return complain(r.drive_id, "write blocks without writes");
        if (r.longest_saturated_run > r.saturated_hours)
            return complain(r.drive_id,
                            "saturated run exceeds saturated hours");
    }
    return Status();
}

bool
LifetimeTrace::validate(bool fail_hard) const
{
    Status s = checkValid();
    if (s.ok())
        return true;
    if (fail_hard)
        throw StatusError(s);
    return false;
}

std::vector<double>
LifetimeTrace::utilizations() const
{
    std::vector<double> out;
    out.reserve(records_.size());
    for (const LifetimeRecord &r : records_)
        out.push_back(r.utilization());
    return out;
}

std::vector<double>
LifetimeTrace::readFractions() const
{
    std::vector<double> out;
    out.reserve(records_.size());
    for (const LifetimeRecord &r : records_)
        out.push_back(r.readFraction());
    return out;
}

double
LifetimeTrace::fractionWithSaturatedRun(std::uint64_t hours) const
{
    if (records_.empty())
        return 0.0;
    std::size_t n = 0;
    for (const LifetimeRecord &r : records_) {
        if (r.longest_saturated_run >= hours)
            ++n;
    }
    return static_cast<double>(n) / static_cast<double>(records_.size());
}

} // namespace trace
} // namespace dlw
