/**
 * @file
 * M5: streaming pipeline vs. the materializing path.
 *
 * Two claims are measured.  First, pass fusion: the characterization
 * kernels used to take one trip over the trace each; the streaming
 * pass runs them fused in a single trip, so the fused wall time
 * should sit well under the summed single-kernel passes.  Second,
 * bounded memory: the streaming fleet path keeps per-shard residency
 * at O(batch) where the reference path materializes the trace and
 * the completion vector, so process peak RSS should step up visibly
 * when the reference path runs after the streaming one.
 *
 * Byte-identity is asserted on the way (fused == per-kernel numbers,
 * streamed fleet report == reference fleet report); a mismatch fails
 * the binary, which doubles as a smoke test.
 */

#include <chrono>
#include <iostream>

#include <sys/resource.h>

#include "benchutil.hh"
#include "core/burstiness.hh"
#include "core/footprint.hh"
#include "core/pass.hh"
#include "core/report.hh"
#include "core/rwmix.hh"
#include "fleet/pipeline.hh"
#include "obs/export.hh"
#include "trace/source.hh"

using namespace dlw;

namespace
{

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Peak resident set of this process in MiB (monotone). */
long
peakRssMb()
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss / 1024; // ru_maxrss is KiB on Linux
}

fleet::FleetConfig
heavyFleet(bool stream)
{
    // A long window at a sub-saturation rate: each shard's trace and
    // completion vector are large enough that materializing them
    // moves RSS, without drowning the drive model in queueing.
    fleet::FleetConfig cfg;
    cfg.drives = 16;
    cfg.threads = 4;
    cfg.preset = fleet::FleetPreset::Mixed;
    cfg.seed = bench::kSeed;
    cfg.rate = 120.0;
    cfg.window = 10 * kMinute;
    cfg.stream = stream;
    return cfg;
}

} // anonymous namespace

int
main()
{
    obs::BenchReportGuard obs_guard("streaming");
    trace::registerBatchMetrics();
    core::registerPassMetrics();

    std::cout << "Streaming pipeline: single fused pass and bounded "
                 "memory (M5)\n\n";
    bool ok = true;

    // ---- Pass fusion: one trip vs one trip per kernel ------------
    Rng rng(bench::kSeed);
    synth::Workload w = synth::Workload::makeFileServer(1 << 24, 800.0);
    const trace::MsTrace tr =
        w.generate(rng, "m5-drive", 0, 5 * kMinute);
    const Lba capacity = 1 << 24;

    const double t0 = nowSeconds();
    const core::BurstinessReport b_ref = core::analyzeBurstiness(tr);
    const core::RwDynamics rw_ref = core::analyzeRwDynamics(tr);
    const core::FootprintReport f_ref =
        core::analyzeFootprint(tr, capacity);
    const double multi_s = nowSeconds() - t0;

    core::BurstinessAccumulator b;
    core::RwMixAccumulator rw;
    core::FootprintAccumulator f(capacity);
    const double t1 = nowSeconds();
    trace::MsTraceSource src(tr);
    core::CharacterizationPass pass;
    pass.add(b);
    pass.add(rw);
    pass.add(f);
    pass.run(src);
    const double fused_s = nowSeconds() - t1;

    ok = ok && b.report().interarrival_cv == b_ref.interarrival_cv &&
         rw.report().mean_run_length == rw_ref.mean_run_length &&
         f.report().extent_gini == f_ref.extent_gini;

    core::Table ft("pass fusion over " + std::to_string(tr.size()) +
                       " requests",
                   {"path", "trips", "wall s"});
    ft.addRow({"one pass per kernel", "3", core::cell(multi_s)});
    ft.addRow({"fused single pass", "1", core::cell(fused_s)});
    ft.print(std::cout);
    std::cout << "fusion speedup: " << core::cell(multi_s / fused_s)
              << "x; kernel outputs "
              << (ok ? "bit-identical" : "DIFFER") << "\n\n";

    // ---- Bounded memory: streamed fleet first, reference second --
    // peak RSS is a monotone high-water mark, so the order is the
    // measurement: whatever the streaming run peaks at, only the
    // materializing run can raise.
    const long rss_start = peakRssMb();
    const double t2 = nowSeconds();
    fleet::FleetResult streamed = fleet::runFleet(heavyFleet(true));
    const double stream_s = nowSeconds() - t2;
    const long rss_stream = peakRssMb();

    const double t3 = nowSeconds();
    fleet::FleetResult reference = fleet::runFleet(heavyFleet(false));
    const double ref_s = nowSeconds() - t3;
    const long rss_ref = peakRssMb();

    const std::string streamed_report =
        fleet::renderFleetReport(heavyFleet(true), streamed);
    const std::string reference_report =
        fleet::renderFleetReport(heavyFleet(false), reference);
    const bool fleet_ok = streamed_report == reference_report;
    ok = ok && fleet_ok;

    core::Table mt("fleet memory: 16 drives x 120 req/s x 10 min",
                   {"path", "wall s", "peak RSS MiB"});
    mt.addRow({"streamed (O(batch)/shard)", core::cell(stream_s),
               std::to_string(rss_stream)});
    mt.addRow({"materialized (O(n)/shard)", core::cell(ref_s),
               std::to_string(rss_ref)});
    mt.print(std::cout);
    std::cout << "start RSS " << rss_start << " MiB; reference adds "
              << (rss_ref - rss_stream)
              << " MiB over the streaming peak\n";
    std::cout << "fleet reports "
              << (fleet_ok ? "byte-identical" : "DIFFER")
              << " between the two paths\n";
    return ok ? 0 : 1;
}
