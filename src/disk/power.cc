#include "disk/power.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dlw
{
namespace disk
{

double
PowerReport::meanPower(Tick window) const
{
    if (window <= 0)
        return 0.0;
    return total() / ticksToSeconds(window);
}

PowerReport
evaluatePower(const ServiceLog &log, const PowerConfig &config)
{
    PowerReport rep;

    auto charge_active = [&](Tick dur) {
        rep.active_j += config.active_w * ticksToSeconds(dur);
    };
    auto charge_gap = [&](Tick gap, bool followed_by_busy) {
        if (config.spindown_timeout == kTickNone ||
            gap <= config.spindown_timeout) {
            rep.idle_j += config.idle_w * ticksToSeconds(gap);
            return;
        }
        // Spin down after the timeout; the rest of the gap is spent
        // in standby.
        rep.idle_j += config.idle_w *
                      ticksToSeconds(config.spindown_timeout);
        rep.standby_j += config.standby_w *
                         ticksToSeconds(gap - config.spindown_timeout);
        ++rep.spindowns;
        if (followed_by_busy) {
            rep.spinup_j += config.spinup_j;
            ++rep.delayed_requests;
            rep.added_latency += config.spinup_time;
        }
    };

    Tick at = log.window_start;
    for (const trace::BusyInterval &iv : log.busy) {
        dlw_assert(iv.first >= at, "busy intervals out of order");
        if (iv.first > at)
            charge_gap(iv.first - at, true);
        charge_active(iv.second - iv.first);
        at = iv.second;
    }
    if (log.window_end > at)
        charge_gap(log.window_end - at, false);

    return rep;
}

} // namespace disk
} // namespace dlw
