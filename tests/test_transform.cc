/**
 * @file
 * Tests for trace/transform (slice, merge, scaleRate, shift).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "disk/drive.hh"
#include "synth/workload.hh"
#include "trace/transform.hh"

namespace dlw
{
namespace trace
{
namespace
{

Request
mk(Tick at, Lba lba = 0)
{
    Request r;
    r.arrival = at;
    r.lba = lba;
    r.blocks = 8;
    r.op = Op::Read;
    return r;
}

MsTrace
sample()
{
    MsTrace tr("s", 0, 100);
    for (Tick t : {5, 20, 40, 60, 80, 99})
        tr.append(mk(t, static_cast<Lba>(t)));
    return tr;
}

TEST(Slice, CutsHalfOpenWindow)
{
    MsTrace out = slice(sample(), 20, 60);
    EXPECT_EQ(out.start(), 20);
    EXPECT_EQ(out.end(), 60);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out.at(0).arrival, 20);
    EXPECT_EQ(out.at(1).arrival, 40);
    EXPECT_TRUE(out.validate());
}

TEST(Slice, ClampsToSourceWindow)
{
    MsTrace out = slice(sample(), -50, 1000);
    EXPECT_EQ(out.start(), 0);
    EXPECT_EQ(out.end(), 100);
    EXPECT_EQ(out.size(), 6u);
}

TEST(Slice, EmptyWindow)
{
    MsTrace out = slice(sample(), 21, 21);
    EXPECT_EQ(out.size(), 0u);
    EXPECT_EQ(out.duration(), 0);
}

TEST(Merge, InterleavesSorted)
{
    MsTrace a("a", 0, 50);
    a.append(mk(10));
    a.append(mk(30));
    MsTrace b("b", 0, 100);
    b.append(mk(20));
    b.append(mk(90));

    MsTrace out = merge({a, b});
    EXPECT_EQ(out.driveId(), "a+merged");
    EXPECT_EQ(out.start(), 0);
    EXPECT_EQ(out.end(), 100);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out.at(0).arrival, 10);
    EXPECT_EQ(out.at(1).arrival, 20);
    EXPECT_EQ(out.at(2).arrival, 30);
    EXPECT_EQ(out.at(3).arrival, 90);
    EXPECT_TRUE(out.validate());
}

TEST(Merge, SingleInputIsCopy)
{
    MsTrace out = merge({sample()});
    EXPECT_EQ(out.size(), 6u);
}

TEST(MergeDeathTest, EmptyInput)
{
    EXPECT_DEATH(merge({}), "zero traces");
}

TEST(ScaleRate, DoublingRateHalvesGaps)
{
    MsTrace out = scaleRate(sample(), 2.0);
    EXPECT_EQ(out.duration(), 50);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out.at(0).arrival, 3); // 5 / 2, rounded
    EXPECT_EQ(out.at(1).arrival, 10);
    EXPECT_EQ(out.at(5).arrival, 49); // clamped into window
    EXPECT_TRUE(out.validate());
    // Rate doubles.
    MsTrace src = sample();
    EXPECT_NEAR(out.arrivalRate(), 2.0 * src.arrivalRate(),
                0.2 * src.arrivalRate());
}

TEST(ScaleRate, SlowingDownStretches)
{
    MsTrace out = scaleRate(sample(), 0.5);
    EXPECT_EQ(out.duration(), 200);
    EXPECT_EQ(out.at(1).arrival, 40);
    EXPECT_TRUE(out.validate());
}

TEST(ScaleRate, UtilizationFollowsRate)
{
    Rng rng(3);
    synth::Workload w = synth::Workload::makeOltp(1 << 22, 40.0);
    MsTrace tr = w.generate(rng, "d", 0, 60 * kSec);
    MsTrace fast = scaleRate(tr, 3.0);

    disk::DriveConfig cfg = disk::DriveConfig::makeEnterprise();
    disk::ServiceLog slow_log = disk::DiskDrive(cfg).service(tr);
    disk::ServiceLog fast_log = disk::DiskDrive(cfg).service(fast);
    EXPECT_GT(fast_log.utilization(), 2.0 * slow_log.utilization());
}

TEST(Shift, MovesWindowAndArrivals)
{
    MsTrace out = shift(sample(), 1000);
    EXPECT_EQ(out.start(), 1000);
    EXPECT_EQ(out.end(), 1100);
    EXPECT_EQ(out.at(0).arrival, 1005);
    EXPECT_TRUE(out.validate());
}

TEST(Shift, RoundTrips)
{
    MsTrace out = shift(shift(sample(), 500), -500);
    MsTrace src = sample();
    ASSERT_EQ(out.size(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i)
        EXPECT_TRUE(out.at(i) == src.at(i));
}

TEST(SliceDeathTest, InvertedWindow)
{
    EXPECT_DEATH(slice(sample(), 60, 20), "inverted");
}

} // anonymous namespace
} // namespace trace
} // namespace dlw
