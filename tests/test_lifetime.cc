/**
 * @file
 * Unit tests for trace/lifetime.
 */

#include <gtest/gtest.h>

#include "trace/lifetime.hh"

namespace dlw
{
namespace trace
{
namespace
{

LifetimeRecord
record(const std::string &id, Tick power_on, Tick busy,
       std::uint64_t reads, std::uint64_t writes)
{
    LifetimeRecord r;
    r.drive_id = id;
    r.power_on = power_on;
    r.busy = busy;
    r.reads = reads;
    r.writes = writes;
    r.read_blocks = reads * 8;
    r.write_blocks = writes * 8;
    return r;
}

TEST(LifetimeRecord, DerivedFields)
{
    LifetimeRecord r =
        record("d0", 100 * kHour, 25 * kHour, 300, 100);
    EXPECT_DOUBLE_EQ(r.utilization(), 0.25);
    EXPECT_EQ(r.total(), 400u);
    EXPECT_DOUBLE_EQ(r.readFraction(), 0.75);
    EXPECT_EQ(r.bytesRead(), 300u * 8u * 512u);
    EXPECT_EQ(r.bytesWritten(), 100u * 8u * 512u);
    EXPECT_DOUBLE_EQ(r.requestsPerHour(), 4.0);
}

TEST(LifetimeRecord, UnusedDriveSafe)
{
    LifetimeRecord r;
    EXPECT_DOUBLE_EQ(r.utilization(), 0.0);
    EXPECT_DOUBLE_EQ(r.readFraction(), 0.0);
    EXPECT_DOUBLE_EQ(r.requestsPerHour(), 0.0);
}

TEST(LifetimeTrace, AppendAndAccess)
{
    LifetimeTrace t("FAM");
    EXPECT_EQ(t.family(), "FAM");
    EXPECT_TRUE(t.empty());
    t.append(record("a", kHour, 0, 1, 1));
    t.append(record("b", kHour, kHour / 2, 2, 2));
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.at(1).drive_id, "b");
}

TEST(LifetimeTrace, Utilizations)
{
    LifetimeTrace t("FAM");
    t.append(record("a", 10 * kHour, 1 * kHour, 1, 1));
    t.append(record("b", 10 * kHour, 5 * kHour, 1, 1));
    auto us = t.utilizations();
    ASSERT_EQ(us.size(), 2u);
    EXPECT_DOUBLE_EQ(us[0], 0.1);
    EXPECT_DOUBLE_EQ(us[1], 0.5);
}

TEST(LifetimeTrace, FractionWithSaturatedRun)
{
    LifetimeTrace t("FAM");
    auto r1 = record("a", kHour, 0, 1, 1);
    r1.saturated_hours = 10;
    r1.longest_saturated_run = 6;
    auto r2 = record("b", kHour, 0, 1, 1);
    r2.saturated_hours = 2;
    r2.longest_saturated_run = 2;
    t.append(r1);
    t.append(r2);
    EXPECT_DOUBLE_EQ(t.fractionWithSaturatedRun(1), 1.0);
    EXPECT_DOUBLE_EQ(t.fractionWithSaturatedRun(3), 0.5);
    EXPECT_DOUBLE_EQ(t.fractionWithSaturatedRun(10), 0.0);
}

TEST(LifetimeTrace, ValidateCatchesBusyOverPowerOn)
{
    LifetimeTrace t("FAM");
    t.append(record("bad", kHour, 2 * kHour, 1, 1));
    EXPECT_FALSE(t.validate());
}

TEST(LifetimeTrace, ValidateCatchesRunOverHours)
{
    LifetimeTrace t("FAM");
    auto r = record("bad", 10 * kHour, kHour, 1, 1);
    r.saturated_hours = 2;
    r.longest_saturated_run = 5;
    t.append(r);
    EXPECT_FALSE(t.validate());
}

TEST(LifetimeTrace, ValidateAcceptsGood)
{
    LifetimeTrace t("FAM");
    auto r = record("ok", 10 * kHour, kHour, 5, 5);
    r.saturated_hours = 3;
    r.longest_saturated_run = 2;
    t.append(r);
    EXPECT_TRUE(t.validate());
}

TEST(LifetimeTrace, ValidateFailHardThrows)
{
    LifetimeTrace t("FAM");
    t.append(record("bad", kHour, 2 * kHour, 1, 1));
    Status s = t.checkValid();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kCorruptData);
    EXPECT_NE(s.message().find("busy time exceeds power-on"),
              std::string::npos);
    EXPECT_THROW(t.validate(true), StatusError);
}

} // anonymous namespace
} // namespace trace
} // namespace dlw
