#include "common/status.hh"

#include <sstream>

namespace dlw
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk:
        return "Ok";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kCorruptData:
        return "CorruptData";
      case StatusCode::kTruncated:
        return "Truncated";
      case StatusCode::kIoError:
        return "IoError";
      case StatusCode::kFailedPrecondition:
        return "FailedPrecondition";
      case StatusCode::kUnavailable:
        return "Unavailable";
      case StatusCode::kInternal:
        return "Internal";
    }
    return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message))
{
    dlw_assert(code != StatusCode::kOk,
               "error Status needs a non-OK code");
}

Status
Status::invalidArgument(std::string msg)
{
    return Status(StatusCode::kInvalidArgument, std::move(msg));
}

Status
Status::notFound(std::string msg)
{
    return Status(StatusCode::kNotFound, std::move(msg));
}

Status
Status::corruptData(std::string msg)
{
    return Status(StatusCode::kCorruptData, std::move(msg));
}

Status
Status::truncated(std::string msg)
{
    return Status(StatusCode::kTruncated, std::move(msg));
}

Status
Status::ioError(std::string msg)
{
    return Status(StatusCode::kIoError, std::move(msg));
}

Status
Status::failedPrecondition(std::string msg)
{
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
}

Status
Status::unavailable(std::string msg)
{
    return Status(StatusCode::kUnavailable, std::move(msg));
}

Status
Status::internal(std::string msg)
{
    return Status(StatusCode::kInternal, std::move(msg));
}

Status &
Status::withContext(std::string frame)
{
    context_.insert(context_.begin(), std::move(frame));
    return *this;
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    std::ostringstream os;
    os << '[' << statusCodeName(code_) << "] ";
    for (const std::string &frame : context_)
        os << frame << ": ";
    os << message_;
    return os.str();
}

} // namespace dlw
