#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "common/binenc.hh"

namespace dlw
{
namespace stats
{

Summary
Summary::fromRaw(std::uint64_t n, double mean, double m2, double m3,
                 double m4, double min, double max)
{
    Summary s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.m3_ = m3;
    s.m4_ = m4;
    s.min_ = min;
    s.max_ = max;
    return s;
}

void
Summary::add(double x)
{
    const double n1 = static_cast<double>(n_);
    ++n_;
    const double n = static_cast<double>(n_);
    const double delta = x - mean_;
    const double delta_n = delta / n;
    const double delta_n2 = delta_n * delta_n;
    const double term1 = delta * delta_n * n1;

    mean_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) +
           6.0 * delta_n2 * m2_ - 4.0 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
    m2_ += term1;

    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Summary::merge(const Summary &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }

    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double nx = na + nb;
    const double delta = other.mean_ - mean_;
    const double delta2 = delta * delta;
    const double delta3 = delta2 * delta;
    const double delta4 = delta2 * delta2;

    const double m2x = m2_ + other.m2_ + delta2 * na * nb / nx;
    const double m3x = m3_ + other.m3_ +
        delta3 * na * nb * (na - nb) / (nx * nx) +
        3.0 * delta * (na * other.m2_ - nb * m2_) / nx;
    const double m4x = m4_ + other.m4_ +
        delta4 * na * nb * (na * na - na * nb + nb * nb) / (nx * nx * nx) +
        6.0 * delta2 *
            (na * na * other.m2_ + nb * nb * m2_) / (nx * nx) +
        4.0 * delta * (na * other.m3_ - nb * m3_) / nx;

    mean_ = (na * mean_ + nb * other.mean_) / nx;
    m2_ = m2x;
    m3_ = m3x;
    m4_ = m4x;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Summary::clear()
{
    *this = Summary();
}

double
Summary::variance() const
{
    if (n_ < 1)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
Summary::sampleVariance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::cv() const
{
    if (n_ == 0 || mean_ == 0.0)
        return 0.0;
    return stddev() / std::fabs(mean_);
}

double
Summary::skewness() const
{
    if (n_ < 2 || m2_ <= 0.0)
        return 0.0;
    const double n = static_cast<double>(n_);
    return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double
Summary::excessKurtosis() const
{
    if (n_ < 2 || m2_ <= 0.0)
        return 0.0;
    const double n = static_cast<double>(n_);
    return n * m4_ / (m2_ * m2_) - 3.0;
}

void
Summary::saveState(BinEnc &enc) const
{
    enc.u64(n_);
    enc.f64(mean_);
    enc.f64(m2_);
    enc.f64(m3_);
    enc.f64(m4_);
    enc.f64(min_);
    enc.f64(max_);
}

bool
Summary::loadState(BinDec &dec)
{
    n_ = dec.u64();
    mean_ = dec.f64();
    m2_ = dec.f64();
    m3_ = dec.f64();
    m4_ = dec.f64();
    min_ = dec.f64();
    max_ = dec.f64();
    return dec.ok();
}

} // namespace stats
} // namespace dlw
