/**
 * @file
 * Bounded per-connection byte buffer.
 *
 * Every connection in the daemon owns two of these — bytes read but
 * not yet parsed, bytes rendered but not yet written — and the
 * overload policy is expressed through their caps: a connection
 * whose unparsed input cannot shrink (one CSV line or frame bigger
 * than the cap) or whose output the peer will not drain is shed,
 * never grown.  The buffer is a flat string with a consumed-prefix
 * cursor; compaction happens only when the dead prefix dominates,
 * so steady-state append/consume does not memmove per byte.
 */

#ifndef DLW_NET_BUFFER_HH
#define DLW_NET_BUFFER_HH

#include <cstddef>
#include <string>

namespace dlw
{
namespace net
{

/**
 * FIFO byte queue with a contiguous unconsumed view.
 */
class ByteQueue
{
  public:
    /** Bytes currently queued. */
    std::size_t size() const { return buf_.size() - head_; }

    /** True when nothing is queued. */
    bool empty() const { return head_ == buf_.size(); }

    /** Contiguous view of the unconsumed bytes (size() long). */
    const char *data() const { return buf_.data() + head_; }

    /** Append n raw bytes. */
    void append(const char *data, std::size_t n);

    /** Append a string's bytes. */
    void append(const std::string &s) { append(s.data(), s.size()); }

    /** Drop the first n unconsumed bytes (n <= size()). */
    void consume(std::size_t n);

    /** Drop everything. */
    void clear();

    /**
     * Offset of byte `c` within the unconsumed view, or npos.
     */
    std::size_t find(char c) const;

    static constexpr std::size_t npos = std::string::npos;

  private:
    std::string buf_;
    std::size_t head_ = 0;
};

} // namespace net
} // namespace dlw

#endif // DLW_NET_BUFFER_HH
