/**
 * @file
 * Tests for the top-level multi-scale characterization.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/characterize.hh"
#include "synth/family.hh"
#include "synth/workload.hh"
#include "trace/aggregate.hh"

namespace dlw
{
namespace core
{
namespace
{

TEST(Characterize, MsScalePopulatesFields)
{
    Rng rng(1);
    synth::Workload w = synth::Workload::makeOltp(1 << 22, 60.0);
    trace::MsTrace tr = w.generate(rng, "drv-0", 0, 60 * kSec);
    disk::DiskDrive drive(disk::DriveConfig::makeEnterprise());
    disk::ServiceLog log = drive.service(tr);

    DriveCharacterization c = characterizeMs(tr, log);
    EXPECT_EQ(c.drive_id, "drv-0");
    ASSERT_TRUE(c.util_1s.has_value());
    ASSERT_TRUE(c.util_1min.has_value());
    ASSERT_TRUE(c.idle_fraction.has_value());
    ASSERT_TRUE(c.ms_burstiness.has_value());
    ASSERT_TRUE(c.arrival_rate.has_value());
    EXPECT_NEAR(*c.idle_fraction + c.util_1s->mean, 1.0, 0.02);
    EXPECT_GT(*c.arrival_rate, 10.0);
    ASSERT_TRUE(c.p95_response_ms.has_value());
    ASSERT_TRUE(c.p99_response_ms.has_value());
    EXPECT_GE(*c.p99_response_ms, *c.p95_response_ms);
    EXPECT_GE(*c.p95_response_ms, 0.0);
    EXPECT_FALSE(c.util_hour.has_value());
}

TEST(Characterize, HourAndLifetimeScalesExtend)
{
    synth::FamilyConfig cfg;
    synth::FamilyModel model(cfg);
    synth::DriveProfile p = model.sampleProfile(2);
    trace::HourTrace ht = model.generateHourTrace(p, 24 * 14);
    trace::LifetimeRecord life = trace::hourToLifetime(ht);

    DriveCharacterization c;
    c.drive_id = p.id;
    addHourScale(c, ht);
    addLifetimeScale(c, life);

    ASSERT_TRUE(c.util_hour.has_value());
    ASSERT_TRUE(c.idle_hour_fraction.has_value());
    ASSERT_TRUE(c.lifetime_utilization.has_value());
    EXPECT_NEAR(*c.lifetime_utilization, c.util_hour->mean, 1e-9);
    EXPECT_EQ(*c.lifetime_requests, ht.totalRequests());
}

TEST(Characterize, RenderContainsKeyRows)
{
    Rng rng(2);
    synth::Workload w = synth::Workload::makeFileServer(1 << 22, 40.0);
    trace::MsTrace tr = w.generate(rng, "drv-9", 0, 30 * kSec);
    disk::DiskDrive drive(disk::DriveConfig::makeEnterprise());
    DriveCharacterization c = characterizeMs(tr, drive.service(tr));

    const std::string s = c.render();
    EXPECT_NE(s.find("drv-9"), std::string::npos);
    EXPECT_NE(s.find("arrival rate"), std::string::npos);
    EXPECT_NE(s.find("utilization mean"), std::string::npos);
    EXPECT_NE(s.find("idle fraction"), std::string::npos);
    EXPECT_NE(s.find("Hurst"), std::string::npos);
    // Hour rows absent without hour data.
    EXPECT_EQ(s.find("hourly utilization"), std::string::npos);
}

TEST(Characterize, RenderGrowsWithScales)
{
    DriveCharacterization c;
    c.drive_id = "x";
    const std::size_t empty_len = c.render().size();
    c.lifetime_utilization = 0.25;
    c.lifetime_read_fraction = 0.7;
    EXPECT_GT(c.render().size(), empty_len);
    EXPECT_NE(c.render().find("lifetime utilization"),
              std::string::npos);
}

} // anonymous namespace
} // namespace core
} // namespace dlw
