/**
 * @file
 * The Lifetime trace: cumulative per-drive counters over an entire
 * deployment, collected across a whole drive family.
 *
 * This is the coarsest of the paper's three data sets: one record
 * per drive summarizing everything its firmware accumulated over its
 * field life.  The family-variability analyses (utilization spread,
 * saturated-streamer detection) run over collections of these.
 */

#ifndef DLW_TRACE_LIFETIME_HH
#define DLW_TRACE_LIFETIME_HH

#include <string>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"

namespace dlw
{
namespace trace
{

/**
 * Cumulative counters for one drive's field life.
 */
struct LifetimeRecord
{
    /** Drive identifier (serial-number stand-in). */
    std::string drive_id;
    /** Total powered-on time. */
    Tick power_on = 0;
    /** Total time the mechanism was busy. */
    Tick busy = 0;
    /** Cumulative read commands. */
    std::uint64_t reads = 0;
    /** Cumulative write commands. */
    std::uint64_t writes = 0;
    /** Cumulative blocks read. */
    std::uint64_t read_blocks = 0;
    /** Cumulative blocks written. */
    std::uint64_t write_blocks = 0;
    /** Peak hourly command count observed over the life. */
    std::uint64_t peak_hour_requests = 0;
    /** Hours with utilization >= 0.9 ("saturated hours"). */
    std::uint64_t saturated_hours = 0;
    /** Longest run of consecutive saturated hours. */
    std::uint64_t longest_saturated_run = 0;

    /** Lifetime utilization = busy / power_on (0 when unused). */
    double
    utilization() const
    {
        return power_on > 0
            ? static_cast<double>(busy) / static_cast<double>(power_on)
            : 0.0;
    }

    /** Total commands over the life. */
    std::uint64_t total() const { return reads + writes; }

    /** Fraction of commands that are reads. */
    double
    readFraction() const
    {
        const std::uint64_t t = total();
        return t ? static_cast<double>(reads) / static_cast<double>(t)
                 : 0.0;
    }

    /** Bytes read over the life. */
    std::uint64_t
    bytesRead() const
    {
        return read_blocks * static_cast<std::uint64_t>(kBlockBytes);
    }

    /** Bytes written over the life. */
    std::uint64_t
    bytesWritten() const
    {
        return write_blocks * static_cast<std::uint64_t>(kBlockBytes);
    }

    /** Mean commands per powered-on hour. */
    double
    requestsPerHour() const
    {
        const double hours = static_cast<double>(power_on) /
                             static_cast<double>(kHour);
        return hours > 0.0 ? static_cast<double>(total()) / hours : 0.0;
    }
};

/**
 * Lifetime records for a whole drive family.
 */
class LifetimeTrace
{
  public:
    LifetimeTrace() = default;

    /** @param family Name of the drive family. */
    explicit LifetimeTrace(std::string family);

    /** Family name. */
    const std::string &family() const { return family_; }

    /** Set the family name. */
    void setFamily(std::string f) { family_ = std::move(f); }

    /** Add one drive's record. */
    void append(LifetimeRecord rec);

    /** Number of drives. */
    std::size_t size() const { return records_.size(); }

    /** True when no drive has been recorded. */
    bool empty() const { return records_.empty(); }

    /** Record i (bounds-checked). */
    const LifetimeRecord &at(std::size_t i) const;

    /** All records. */
    const std::vector<LifetimeRecord> &records() const { return records_; }

    /**
     * Validate internal consistency (busy <= power_on, block counts
     * imply command counts).
     *
     * @return Success, or a CorruptData status naming the first
     *         violation.
     */
    Status checkValid() const;

    /**
     * Boolean wrapper around checkValid().
     *
     * @param fail_hard Throw StatusError on violation instead of
     *                  returning false.
     */
    bool validate(bool fail_hard = false) const;

    /** Utilization of every drive, in record order. */
    std::vector<double> utilizations() const;

    /** Lifetime read fraction of every drive. */
    std::vector<double> readFractions() const;

    /**
     * Fraction of drives whose longest saturated run reached at
     * least the given number of hours.
     */
    double fractionWithSaturatedRun(std::uint64_t hours) const;

  private:
    std::string family_;
    std::vector<LifetimeRecord> records_;
};

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_LIFETIME_HH
