#include "net/buffer.hh"

#include <cstring>

namespace dlw
{
namespace net
{

void
ByteQueue::append(const char *data, std::size_t n)
{
    // Compact when the dead prefix is both large and the majority of
    // the backing store: amortized O(1) per byte.
    if (head_ > 4096 && head_ > buf_.size() - head_) {
        buf_.erase(0, head_);
        head_ = 0;
    }
    buf_.append(data, n);
}

void
ByteQueue::consume(std::size_t n)
{
    head_ += n;
    if (head_ >= buf_.size())
        clear();
}

void
ByteQueue::clear()
{
    buf_.clear();
    head_ = 0;
}

std::size_t
ByteQueue::find(char c) const
{
    const char *p = static_cast<const char *>(
        std::memchr(data(), c, size()));
    return p == nullptr ? npos
                        : static_cast<std::size_t>(p - data());
}

} // namespace net
} // namespace dlw
