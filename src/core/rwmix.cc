#include "core/rwmix.hh"

#include <algorithm>
#include <cmath>

#include "common/binenc.hh"
#include "common/logging.hh"
#include "stats/simd/simd.hh"

namespace dlw
{
namespace core
{

namespace
{

/** Fill the distribution fields shared by both granularities. */
void
finishSeriesStats(RwDynamics &d)
{
    double sum = 0.0, sum2 = 0.0;
    std::size_t active = 0, write_dom = 0;
    for (double f : d.read_fraction_series) {
        if (f < 0.0)
            continue;
        ++active;
        sum += f;
        sum2 += f * f;
        if (f < 0.5)
            ++write_dom;
    }
    if (active > 0) {
        const double n = static_cast<double>(active);
        const double mean = sum / n;
        const double var = std::max(sum2 / n - mean * mean, 0.0);
        d.read_fraction_stddev = std::sqrt(var);
        d.write_dominated_fraction = static_cast<double>(write_dom) / n;
    }
}

} // anonymous namespace

RwMixAccumulator::RwMixAccumulator(Tick bin_width)
    : reads_(0, bin_width, 0), all_(0, bin_width, 0)
{
    dlw_assert(bin_width > 0, "bin width must be positive");
    d_.bin_width = bin_width;
}

void
RwMixAccumulator::begin(const trace::RequestSource &src)
{
    // Pre-size exactly like MsTrace::binCounts().
    const Tick duration = src.duration();
    const Tick w = d_.bin_width;
    auto bins = static_cast<std::size_t>(
        duration > 0 ? (duration + w - 1) / w : 0);
    reads_ = stats::BinnedSeries(src.start(), w, bins);
    all_ = stats::BinnedSeries(src.start(), w, bins);
}

void
RwMixAccumulator::observe(const trace::RequestBatch &batch)
{
    const std::size_t sz = batch.size();
    if (sz == 0)
        return;
    const Tick *t = batch.arrivalsData();
    const auto *dir =
        reinterpret_cast<const std::uint8_t *>(batch.opsData());
    const auto read_byte =
        static_cast<std::uint8_t>(trace::Op::Read);
    const stats::simd::KernelOps &k = stats::simd::ops();

    // Column folds: the counts are integers, so splitting the
    // original interleaved per-element loop into one pass per series
    // changes no bit of either series.
    n_ += sz;
    read_n_ +=
        static_cast<std::size_t>(k.count_eq_u8(dir, sz, read_byte));
    std::size_t slow = all_.countSorted(t, sz);
    slow += reads_.countSortedIf(t, dir, read_byte, sz);
    noteKernelSlowPath(slow);

    // The direction-run scan carries a loop dependency (each element
    // looks at the previous direction), so it stays per-element;
    // run_len_ == 0 only before the first request, which makes the
    // first iteration open a run no matter what prev_read_ holds.
    for (std::size_t i = 0; i < sz; ++i) {
        const bool is_read = batch.isRead(i);
        if (is_read == prev_read_ && run_len_ > 0) {
            ++run_len_;
        } else {
            if (run_len_ > 0) {
                ++runs_;
                if (!prev_read_) {
                    d_.longest_write_run =
                        std::max(d_.longest_write_run, run_len_);
                    if (run_len_ >= 8)
                        ++d_.write_bursts;
                }
            }
            prev_read_ = is_read;
            run_len_ = 1;
        }
    }
}

void
RwMixAccumulator::finish()
{
    d_.read_fraction =
        n_ > 0 ? static_cast<double>(read_n_) /
                     static_cast<double>(n_)
               : 0.0;

    d_.read_fraction_series.reserve(all_.size());
    for (std::size_t i = 0; i < all_.size(); ++i) {
        const double total = all_.at(i);
        d_.read_fraction_series.push_back(
            total > 0.0 ? reads_.at(i) / total : -1.0);
    }
    finishSeriesStats(d_);

    if (n_ > 0) {
        ++runs_;
        if (!prev_read_) {
            d_.longest_write_run =
                std::max(d_.longest_write_run, run_len_);
            if (run_len_ >= 8)
                ++d_.write_bursts;
        }
        d_.mean_run_length = static_cast<double>(n_) /
                             static_cast<double>(runs_);
    }
}

void
RwMixAccumulator::saveState(BinEnc &enc) const
{
    enc.i64(d_.bin_width);
    reads_.saveState(enc);
    all_.saveState(enc);
    enc.u64(n_);
    enc.u64(read_n_);
    enc.u64(runs_);
    enc.u64(run_len_);
    enc.u8(prev_read_ ? 1 : 0);
}

bool
RwMixAccumulator::loadState(BinDec &dec)
{
    const Tick bin_width = dec.i64();
    if (!dec.ok() || bin_width <= 0)
        return false;
    d_.bin_width = bin_width;
    if (!reads_.loadState(dec) || !all_.loadState(dec))
        return false;
    n_ = static_cast<std::size_t>(dec.u64());
    read_n_ = static_cast<std::size_t>(dec.u64());
    runs_ = static_cast<std::size_t>(dec.u64());
    run_len_ = static_cast<std::size_t>(dec.u64());
    prev_read_ = dec.u8() != 0;
    return dec.ok();
}

RwDynamics
analyzeRwDynamics(const trace::MsTrace &tr, Tick bin_width)
{
    RwMixAccumulator acc(bin_width);
    trace::MsTraceSource src(tr);
    CharacterizationPass pass;
    pass.add(acc);
    pass.run(src);
    return acc.report();
}

RwDynamics
analyzeRwDynamics(const trace::HourTrace &tr)
{
    RwDynamics d;
    d.bin_width = kHour;

    std::uint64_t reads = 0, total = 0;
    d.read_fraction_series.reserve(tr.hours());
    for (const trace::HourBucket &b : tr.buckets()) {
        reads += b.reads;
        total += b.total();
        d.read_fraction_series.push_back(
            b.total() > 0 ? b.readFraction() : -1.0);
    }
    d.read_fraction = total
        ? static_cast<double>(reads) / static_cast<double>(total)
        : 0.0;
    finishSeriesStats(d);
    return d;
}

} // namespace core
} // namespace dlw
