/**
 * @file
 * Unit tests for the common/options CLI parser.
 */

#include <gtest/gtest.h>

#include "common/options.hh"

namespace dlw
{
namespace
{

Options
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return Options(static_cast<int>(args.size()),
                   const_cast<char *const *>(args.data()), 1);
}

TEST(Options, ParsesKeyValuePairs)
{
    Options o = parse({"--rate", "50", "--out", "x.bin"});
    EXPECT_TRUE(o.has("rate"));
    EXPECT_EQ(o.get("out", ""), "x.bin");
    EXPECT_DOUBLE_EQ(o.getDouble("rate", 0.0), 50.0);
}

TEST(Options, FallbacksApply)
{
    Options o = parse({});
    EXPECT_FALSE(o.has("missing"));
    EXPECT_EQ(o.get("missing", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(o.getDouble("missing", 2.5), 2.5);
    EXPECT_EQ(o.getInt("missing", -7), -7);
}

TEST(Options, IntAndDoubleParsing)
{
    Options o = parse({"--n", "42", "--x", "1e3"});
    EXPECT_EQ(o.getInt("n", 0), 42);
    EXPECT_DOUBLE_EQ(o.getDouble("x", 0.0), 1000.0);
}

TEST(Options, LastValueWins)
{
    Options o = parse({"--k", "a", "--k", "b"});
    EXPECT_EQ(o.get("k", ""), "b");
}

TEST(Options, UnusedKeysReported)
{
    Options o = parse({"--used", "1", "--typo", "2"});
    (void)o.get("used", "");
    auto unused = o.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo");
}

TEST(OptionsDeathTest, MalformedInput)
{
    EXPECT_EXIT(parse({"notanoption"}), ::testing::ExitedWithCode(1),
                "expected --option");
    EXPECT_EXIT(parse({"--dangling"}), ::testing::ExitedWithCode(1),
                "needs a value");
    Options o = parse({"--n", "abc"});
    EXPECT_EXIT(o.getInt("n", 0), ::testing::ExitedWithCode(1),
                "malformed integer");
}

} // anonymous namespace
} // namespace dlw
