/**
 * @file
 * Maximum-likelihood fitting of the candidate distributions used to
 * model interarrival times, idle periods, and request sizes.
 *
 * Supported families: exponential, Pareto (type I), lognormal, and
 * Weibull.  Each fit reports its parameters, the log-likelihood, and
 * provides a CDF usable by the Kolmogorov-Smirnov test, so the
 * interarrival-distribution experiment (E5) can rank the families the
 * way the trace-characterization literature does: exponential loses
 * to the heavy-tailed families on bursty traffic.
 */

#ifndef DLW_STATS_FIT_HH
#define DLW_STATS_FIT_HH

#include <functional>
#include <string>
#include <vector>

namespace dlw
{
namespace stats
{

/** Families supported by fitDistribution(). */
enum class DistFamily
{
    Exponential,
    Pareto,
    Lognormal,
    Weibull,
};

/** Human-readable family name. */
const char *distFamilyName(DistFamily family);

/**
 * A fitted distribution: family, parameters, quality, and CDF.
 */
struct FittedDist
{
    DistFamily family = DistFamily::Exponential;
    /**
     * Parameters, family dependent:
     *  Exponential: {mean}
     *  Pareto:      {shape alpha, scale x_m}
     *  Lognormal:   {mu, sigma}
     *  Weibull:     {shape k, scale lambda}
     */
    std::vector<double> params;
    /** Log-likelihood of the data under the fit. */
    double log_likelihood = 0.0;
    /** Number of samples fitted. */
    std::size_t n = 0;

    /** CDF of the fitted distribution at x. */
    double cdf(double x) const;

    /**
     * Akaike information criterion: 2k - 2 log L.
     *
     * Lower is better; the parameter-count penalty keeps a nested
     * two-parameter family (Weibull) from spuriously outranking its
     * one-parameter special case (exponential) on exponential data.
     */
    double aic() const;

    /** Mean of the fitted distribution (inf for Pareto alpha<=1). */
    double mean() const;

    /** One-line description such as "lognormal(mu=..., sigma=...)". */
    std::string describe() const;
};

/**
 * Fit one family to positive-valued samples by maximum likelihood.
 *
 * @param family  Distribution family to fit.
 * @param xs      Samples; non-positive values are rejected.
 * @return The fitted distribution.
 */
FittedDist fitDistribution(DistFamily family,
                           const std::vector<double> &xs);

/**
 * Fit all supported families and sort by ascending AIC (best model
 * first).
 *
 * @param xs Positive samples.
 * @return Fits, best first.
 */
std::vector<FittedDist> fitAll(const std::vector<double> &xs);

} // namespace stats
} // namespace dlw

#endif // DLW_STATS_FIT_HH
