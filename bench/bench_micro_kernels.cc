/**
 * @file
 * M1 — microbenchmarks of the toolkit's hot kernels.
 *
 * Two parts:
 *
 *  1. A deterministic SIMD-kernel phase (runs first, under its own
 *     BenchReportGuard) that times the dispatched characterization
 *     kernels — histogram binning, IDC window counting, the Welford
 *     gap fold — against the scalar reference on 4096-request
 *     batches, prints the speedup table, and snapshots BENCH_kernels
 *     .json for the bench-diff CI gate.  The phase does fixed work,
 *     so every counter in the snapshot is reproducible to the digit.
 *     When the AVX2 table is dispatchable, the phase *enforces* the
 *     >= 2x speedup floor on linear-histogram binning and IDC
 *     counting by exiting nonzero below it.
 *
 *  2. The pre-existing google-benchmark suite (workload synthesis,
 *     drive servicing, binary trace I/O, estimators) plus per-ISA
 *     kernel benchmarks.  Adaptive iteration counts make gbench
 *     numbers non-deterministic, which is why this part runs after
 *     the guard above has been destroyed and is not snapshot-gated.
 *     `--kernels-only` skips it (what CI runs).
 */

#include <benchmark/benchmark.h>

#include "obs/export.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil.hh"
#include "core/burstiness.hh"
#include "core/pass.hh"
#include "core/rwmix.hh"
#include "obs/metrics.hh"
#include "stats/histogram.hh"
#include "stats/hurst.hh"
#include "stats/simd/kernels.hh"
#include "stats/simd/simd.hh"
#include "stats/timeseries.hh"
#include "synth/bmodel.hh"
#include "trace/aggregate.hh"
#include "trace/binio.hh"

using namespace dlw;

namespace
{

// ------------------------------------------------------------------
// Deterministic kernel phase
// ------------------------------------------------------------------

namespace simd = stats::simd;

/** Batch size the acceptance numbers are quoted at. */
constexpr std::size_t kBatch = 4096;

/** Local xorshift so inputs never depend on libc or repo RNG state. */
struct XRng
{
    std::uint64_t s;
    explicit XRng(std::uint64_t seed) : s(seed ? seed : 1) {}
    std::uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    double
    uniform(double lo, double hi)
    {
        const double u = static_cast<double>(next() >> 11) *
                         0x1.0p-53;
        return lo + u * (hi - lo);
    }
};

/** Bursty sorted arrivals: long same-bin runs, like real traces. */
std::vector<Tick>
burstyTicks(std::size_t n)
{
    std::vector<Tick> t;
    t.reserve(n);
    XRng rng(0xd15c);
    Tick now = 0;
    while (t.size() < n) {
        const std::size_t burst = 1 + rng.next() % 37;
        for (std::size_t i = 0; i < burst && t.size() < n; ++i) {
            t.push_back(now);
            if (rng.next() % 4 == 0)
                now += static_cast<Tick>(rng.next() % 3);
        }
        now += static_cast<Tick>(rng.next() % (20 * kMsec));
    }
    return t;
}

std::vector<double>
uniformSamples(std::size_t n, double lo, double hi)
{
    std::vector<double> xs;
    xs.reserve(n);
    XRng rng(0x5a11);
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(rng.uniform(lo, hi));
    return xs;
}

double
nowSecs()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-3 seconds per call of f() over `reps` calls per trial. */
template <typename F>
double
secsPerCall(F &&f, int reps)
{
    f(); // warm caches and the dispatch pointer
    double best = 1e300;
    for (int trial = 0; trial < 3; ++trial) {
        const double t0 = nowSecs();
        for (int i = 0; i < reps; ++i)
            f();
        const double dt = (nowSecs() - t0) / reps;
        if (dt < best)
            best = dt;
    }
    return best;
}

struct KernelRow
{
    simd::Isa isa;
    double bin_linear = 0.0;
    double bin_log = 0.0;
    double count_sorted = 0.0;
    double welford = 0.0;
    double gaps = 0.0;
    double reduce = 0.0;
};

/**
 * Time every kernel for one ISA.  All scratch is preallocated by the
 * caller so the loops measure kernel work, not allocation.
 */
KernelRow
timeIsa(simd::Isa isa, const std::vector<double> &lin_xs,
        const std::vector<double> &log_xs,
        const std::vector<Tick> &ticks,
        const std::vector<double> &gap_xs,
        const std::vector<std::uint8_t> &dirs,
        const std::vector<std::uint32_t> &blocks,
        std::vector<std::int32_t> &idx, std::vector<double> &bins,
        std::vector<double> &gaps_out)
{
    simd::force(isa);
    const simd::KernelOps &k = simd::ops();
    constexpr int kReps = 2000;
    const double log_lo = -3.0;
    const double inv_log_width = 8.0; // bins per decade

    KernelRow row;
    row.isa = isa;
    row.bin_linear = secsPerCall(
        [&] {
            k.bin_linear(lin_xs.data(), kBatch, 0.0, 100.0,
                         64 / 100.0, 64, idx.data());
            benchmark::DoNotOptimize(idx.data());
        },
        kReps);
    row.bin_log = secsPerCall(
        [&] {
            k.bin_log(log_xs.data(), kBatch, 1e-3, 1e4, log_lo,
                      inv_log_width, 56, idx.data());
            benchmark::DoNotOptimize(idx.data());
        },
        kReps);
    row.count_sorted = secsPerCall(
        [&] {
            // Bins stay integral and far below 2^53 for the whole
            // bench, so repeated counting into the same series is
            // exact and allocation-free.
            k.count_sorted(ticks.data(), kBatch, 0, 10 * kMsec,
                           bins.data(), bins.size());
            benchmark::DoNotOptimize(bins.data());
        },
        kReps);
    row.welford = secsPerCall(
        [&] {
            simd::SummaryLanes lanes;
            k.welford_add(lanes, gap_xs.data(), kBatch);
            benchmark::DoNotOptimize(&lanes);
        },
        kReps / 2);
    row.gaps = secsPerCall(
        [&] {
            k.gaps_i64(ticks.data(), kBatch, -1, gaps_out.data());
            benchmark::DoNotOptimize(gaps_out.data());
        },
        kReps);
    row.reduce = secsPerCall(
        [&] {
            std::uint64_t r =
                k.count_eq_u8(dirs.data(), kBatch, 0) +
                k.sum_u32(blocks.data(), kBatch);
            benchmark::DoNotOptimize(r);
        },
        kReps);
    return row;
}

/**
 * Run the deterministic phase: per-ISA timings, speedup table,
 * snapshot metrics.  Returns nonzero when the AVX2 speedup floor
 * (>= 2x on linear binning and IDC counting) is violated.
 */
int
runKernelPhase()
{
    // Inputs: one batch of everything, shared across ISAs.
    const std::vector<double> lin_xs =
        uniformSamples(kBatch, -5.0, 110.0);
    const std::vector<double> log_xs =
        uniformSamples(kBatch, 1e-4, 2e4);
    const std::vector<Tick> ticks = burstyTicks(kBatch);
    std::vector<double> gap_xs(kBatch);
    simd::detail::kScalarOps.gaps_i64(ticks.data(), kBatch, -1,
                                      gap_xs.data());
    std::vector<std::uint8_t> dirs(kBatch);
    std::vector<std::uint32_t> blocks(kBatch);
    XRng rng(0xb10c);
    for (std::size_t i = 0; i < kBatch; ++i) {
        dirs[i] = static_cast<std::uint8_t>(rng.next() % 2);
        blocks[i] = 1 + static_cast<std::uint32_t>(rng.next() % 256);
    }
    std::vector<std::int32_t> idx(kBatch);
    const auto nbins = static_cast<std::size_t>(
        (ticks.back() / (10 * kMsec)) + 1);
    std::vector<double> bins(nbins, 0.0);
    std::vector<double> gaps_out(kBatch);

    std::vector<KernelRow> rows;
    for (simd::Isa isa :
         {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2}) {
        if (!simd::supported(isa))
            continue;
        rows.push_back(timeIsa(isa, lin_xs, log_xs, ticks, gap_xs,
                               dirs, blocks, idx, bins, gaps_out));
    }
    simd::force(simd::bestSupported());

    const KernelRow &scalar = rows.front();
    std::printf("SIMD kernel timings, %zu-request batches "
                "(ns/element, best of 3; speedup vs scalar)\n",
                kBatch);
    std::printf("%-8s %-22s %-22s %-22s %-22s\n", "isa",
                "bin_linear", "count_sorted(IDC)", "bin_log",
                "welford");
    auto cell = [](double secs, double base) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%7.2f (%4.2fx)",
                      secs / kBatch * 1e9, base / secs);
        return std::string(buf);
    };
    for (const KernelRow &r : rows) {
        std::printf("%-8s %-22s %-22s %-22s %-22s\n",
                    simd::isaName(r.isa),
                    cell(r.bin_linear, scalar.bin_linear).c_str(),
                    cell(r.count_sorted, scalar.count_sorted).c_str(),
                    cell(r.bin_log, scalar.bin_log).c_str(),
                    cell(r.welford, scalar.welford).c_str());
    }

    // Deterministic end-to-end slice so the snapshot also carries the
    // wired accumulator counters (core.pass.*, core.kernel.*).
    {
        trace::MsTrace tr;
        XRng trng(0x7ace);
        std::vector<Tick> arrivals = burstyTicks(50000);
        for (Tick t : arrivals) {
            trace::Request r;
            r.arrival = t;
            r.lba = trng.next() % (1u << 24);
            r.blocks =
                1 + static_cast<BlockCount>(trng.next() % 256);
            r.op = trng.next() % 3 ? trace::Op::Write
                                   : trace::Op::Read;
            tr.appendExtending(r);
        }
        core::BurstinessAccumulator burst;
        core::RwMixAccumulator rw;
        core::TraceTotalsAccumulator totals;
        trace::MsTraceSource src(tr);
        core::CharacterizationPass pass;
        pass.add(burst);
        pass.add(rw);
        pass.add(totals);
        pass.run(src);
        obs::counter("bench.kernels.pass_requests", "requests",
                     "bench", "requests streamed through the fused "
                     "pass by the kernel phase (fixed work)")
            .add(totals.count());
    }
    // Fixed-work volume counter: reps * batch per timed kernel.  The
    // bench-diff gate holds this to +-5%, i.e. exactly equal, so the
    // wall-time comparison always covers the same work.
    obs::counter("bench.kernels.elements", "elements", "bench",
                 "kernel-folded elements in the timed phase "
                 "(fixed work)")
        .add(static_cast<std::uint64_t>(rows.size()) *
             (5 * 2000 + 1000) * kBatch);

    int rc = 0;
    const bool have_avx2 = simd::supported(simd::Isa::kAvx2);
    obs::Gauge &lin_ok = obs::gauge(
        "bench.kernels.avx2_binlinear_ge2x", "bool", "bench",
        "1 when the AVX2 linear-binning kernel beat scalar by >= 2x");
    obs::Gauge &idc_ok = obs::gauge(
        "bench.kernels.avx2_idc_ge2x", "bool", "bench",
        "1 when the AVX2 IDC counting kernel beat scalar by >= 2x");
    if (have_avx2) {
        const KernelRow &avx2 = rows.back();
        const double lin_speedup = scalar.bin_linear / avx2.bin_linear;
        const double idc_speedup =
            scalar.count_sorted / avx2.count_sorted;
        lin_ok.set(lin_speedup >= 2.0 ? 1 : 0);
        idc_ok.set(idc_speedup >= 2.0 ? 1 : 0);
        if (lin_speedup < 2.0 || idc_speedup < 2.0) {
            std::fprintf(stderr,
                         "FAIL: AVX2 speedup floor (>= 2x) violated: "
                         "bin_linear %.2fx, count_sorted %.2fx\n",
                         lin_speedup, idc_speedup);
            rc = 1;
        }
    } else {
        std::printf("AVX2 not dispatchable on this build/CPU; "
                    "speedup floor not checked\n");
    }
    return rc;
}

// ------------------------------------------------------------------
// google-benchmark suite (non-deterministic, not snapshot-gated)
// ------------------------------------------------------------------

trace::MsTrace
sampleTrace(Tick window)
{
    Rng rng(1);
    synth::Workload w = synth::Workload::makeOltp(1 << 24, 200.0);
    return w.generate(rng, "micro", 0, window);
}

void
BM_WorkloadGenerate(benchmark::State &state)
{
    Rng rng(1);
    synth::Workload w = synth::Workload::makeOltp(1 << 24, 200.0);
    std::uint64_t requests = 0;
    for (auto _ : state) {
        trace::MsTrace tr = w.generate(rng, "g", 0, 10 * kSec);
        requests += tr.size();
        benchmark::DoNotOptimize(tr);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_WorkloadGenerate);

void
BM_DriveService(benchmark::State &state)
{
    trace::MsTrace tr = sampleTrace(10 * kSec);
    disk::DriveConfig cfg = disk::DriveConfig::makeEnterprise();
    std::uint64_t requests = 0;
    for (auto _ : state) {
        disk::DiskDrive drive(cfg);
        disk::ServiceLog log = drive.service(tr);
        requests += log.completions.size();
        benchmark::DoNotOptimize(log);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_DriveService);

void
BM_BModelCounts(benchmark::State &state)
{
    Rng rng(2);
    synth::BModel bm(0.8, static_cast<std::uint32_t>(state.range(0)));
    for (auto _ : state) {
        auto counts = bm.counts(rng, 1'000'000);
        benchmark::DoNotOptimize(counts);
    }
}
BENCHMARK(BM_BModelCounts)->Arg(12)->Arg(16)->Arg(20);

void
BM_BinaryRoundTrip(benchmark::State &state)
{
    trace::MsTrace tr = sampleTrace(30 * kSec);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        std::stringstream ss(std::ios::in | std::ios::out |
                             std::ios::binary);
        trace::writeMsBinary(ss, tr);
        trace::MsTrace back = trace::readMsBinary(ss);
        bytes += ss.str().size();
        benchmark::DoNotOptimize(back);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BinaryRoundTrip);

void
BM_HurstAggVar(benchmark::State &state)
{
    Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 1 << 16; ++i)
        xs.push_back(static_cast<double>(rng.poisson(10.0)));
    for (auto _ : state) {
        auto est = stats::hurstAggregatedVariance(xs);
        benchmark::DoNotOptimize(est);
    }
}
BENCHMARK(BM_HurstAggVar);

void
BM_BurstinessReport(benchmark::State &state)
{
    trace::MsTrace tr = sampleTrace(60 * kSec);
    for (auto _ : state) {
        auto rep = core::analyzeBurstiness(tr);
        benchmark::DoNotOptimize(rep);
    }
}
BENCHMARK(BM_BurstinessReport);

void
BM_MsToHour(benchmark::State &state)
{
    trace::MsTrace tr = sampleTrace(60 * kSec);
    for (auto _ : state) {
        auto hour = trace::msToHour(tr);
        benchmark::DoNotOptimize(hour);
    }
}
BENCHMARK(BM_MsToHour);

void
BM_FamilyHourSynthesis(benchmark::State &state)
{
    synth::FamilyModel family = bench::makeFamily();
    synth::DriveProfile p = family.sampleProfile(0);
    for (auto _ : state) {
        auto t = family.generateHourTrace(p, 24 * 7);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_FamilyHourSynthesis);

/** Per-ISA gbench view of the hottest kernels (arg = Isa). */
void
BM_KernelBinLinear(benchmark::State &state)
{
    const auto isa = static_cast<simd::Isa>(state.range(0));
    if (!simd::supported(isa)) {
        state.SkipWithError("isa not dispatchable");
        return;
    }
    simd::force(isa);
    const std::vector<double> xs = uniformSamples(kBatch, -5.0, 110.0);
    std::vector<std::int32_t> idx(kBatch);
    for (auto _ : state) {
        simd::ops().bin_linear(xs.data(), kBatch, 0.0, 100.0,
                               64 / 100.0, 64, idx.data());
        benchmark::DoNotOptimize(idx.data());
    }
    simd::force(simd::bestSupported());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_KernelBinLinear)->Arg(0)->Arg(1)->Arg(2);

void
BM_KernelCountSorted(benchmark::State &state)
{
    const auto isa = static_cast<simd::Isa>(state.range(0));
    if (!simd::supported(isa)) {
        state.SkipWithError("isa not dispatchable");
        return;
    }
    simd::force(isa);
    const std::vector<Tick> ticks = burstyTicks(kBatch);
    const auto nbins = static_cast<std::size_t>(
        (ticks.back() / (10 * kMsec)) + 1);
    std::vector<double> bins(nbins, 0.0);
    for (auto _ : state) {
        simd::ops().count_sorted(ticks.data(), kBatch, 0, 10 * kMsec,
                                 bins.data(), bins.size());
        benchmark::DoNotOptimize(bins.data());
    }
    simd::force(simd::bestSupported());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_KernelCountSorted)->Arg(0)->Arg(1)->Arg(2);

void
BM_KernelWelford(benchmark::State &state)
{
    const auto isa = static_cast<simd::Isa>(state.range(0));
    if (!simd::supported(isa)) {
        state.SkipWithError("isa not dispatchable");
        return;
    }
    simd::force(isa);
    const std::vector<double> xs = uniformSamples(kBatch, 0.0, 1e9);
    simd::SummaryLanes lanes;
    for (auto _ : state) {
        simd::ops().welford_add(lanes, xs.data(), kBatch);
        benchmark::DoNotOptimize(&lanes);
    }
    simd::force(simd::bestSupported());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_KernelWelford)->Arg(0)->Arg(1)->Arg(2);

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool kernels_only = false;
    // Strip our flag before gbench sees the argv.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--kernels-only") == 0) {
            kernels_only = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }

    int rc;
    {
        // Scoped so BENCH_kernels.json snapshots the deterministic
        // phase only — gbench's adaptive iteration counts would
        // poison every counter in it.
        obs::BenchReportGuard obs_guard("kernels");
        rc = runKernelPhase();
    }
    if (rc != 0 || kernels_only)
        return rc;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
