/**
 * @file
 * Import of SPC-style ASCII block traces.
 *
 * The Storage Performance Council trace format is the de-facto
 * interchange used by the public block traces the storage community
 * does have access to (e.g. the UMass/OLTP traces).  Each line is
 *
 *   ASU,LBA,size_bytes,opcode,timestamp_seconds
 *
 * with opcode 'r'/'R' or 'w'/'W'.  Importing a real SPC trace gives
 * the analysis pipeline a path to genuine data alongside the
 * synthetic substrate.
 */

#ifndef DLW_TRACE_SPC_HH
#define DLW_TRACE_SPC_HH

#include <iosfwd>
#include <string>

#include "common/status.hh"
#include "trace/ingest.hh"
#include "trace/mstrace.hh"

namespace dlw
{
namespace trace
{

/**
 * Read an SPC-format trace from a stream.
 *
 * @param is       Input stream of SPC lines.
 * @param drive_id Identifier to stamp on the resulting trace.
 * @param opts     Corrupt-record policy and limits.
 * @param stats    Filled with ingestion counters when non-null.
 * @param asu      Keep only records of this application storage
 *                 unit; -1 keeps every ASU.
 * @return Ms trace with arrivals sorted (the observation window is
 *         [0, last arrival + 1)), or the first unrecovered
 *         corruption.
 */
StatusOr<MsTrace> readSpc(std::istream &is, const std::string &drive_id,
                          const IngestOptions &opts,
                          IngestStats *stats = nullptr, int asu = -1);

/** Read an SPC-format trace from a file under the given policy. */
StatusOr<MsTrace> readSpc(const std::string &path,
                          const std::string &drive_id,
                          const IngestOptions &opts,
                          IngestStats *stats = nullptr, int asu = -1);

/** Strict legacy read (kAbort; throws StatusError on corruption). */
MsTrace readSpc(std::istream &is, const std::string &drive_id,
                int asu = -1);

/** Strict legacy read from a file (throws StatusError). */
MsTrace readSpc(const std::string &path, const std::string &drive_id,
                int asu = -1);

/** Write a ms trace in SPC format (asu column fixed to 0). */
void writeSpc(std::ostream &os, const MsTrace &trace);

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_SPC_HH
