/**
 * @file
 * Minimal binary encode/decode helpers for versioned state blobs.
 *
 * The daemon's crash-safe checkpoints serialize live accumulator
 * state (stats summaries, binned series, decoder progress) into a
 * flat byte string and read it back bit-exactly — a restored session
 * must continue producing reports byte-identical to an uninterrupted
 * run, so doubles round-trip through their raw IEEE-754 bits, never
 * through text.
 *
 * The encoder appends little-endian fixed-width fields to a string.
 * The decoder is failure-latching: any short read or implausible
 * length flips a sticky error flag, every subsequent read returns a
 * zero value, and the caller checks `ok()` once at the end — the
 * same shape as the corrupt-trace parsers, so a truncated or garbled
 * checkpoint is rejected with a Status rather than UB.  Length
 * fields are validated against the bytes actually remaining before
 * any allocation, so a corrupt length cannot balloon memory.
 */

#ifndef DLW_COMMON_BINENC_HH
#define DLW_COMMON_BINENC_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace dlw
{

/** Append-only little-endian encoder over a caller-owned string. */
class BinEnc
{
  public:
    explicit BinEnc(std::string &out) : out_(out) {}

    BinEnc(const BinEnc &) = delete;
    BinEnc &operator=(const BinEnc &) = delete;

    void
    u8(std::uint8_t v)
    {
        out_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        char b[4];
        std::memcpy(b, &v, 4);
        out_.append(b, 4);
    }

    void
    u64(std::uint64_t v)
    {
        char b[8];
        std::memcpy(b, &v, 8);
        out_.append(b, 8);
    }

    void
    i64(std::int64_t v)
    {
        std::uint64_t u;
        std::memcpy(&u, &v, 8);
        u64(u);
    }

    /** Raw IEEE-754 bits: the bit-exact round trip checkpoints need. */
    void
    f64(double v)
    {
        std::uint64_t u;
        std::memcpy(&u, &v, 8);
        u64(u);
    }

    /** Length-prefixed byte string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        out_.append(s);
    }

    /** Length-prefixed raw bytes. */
    void
    bytes(const char *data, std::size_t n)
    {
        u64(n);
        out_.append(data, n);
    }

    /** Length-prefixed vector of raw doubles. */
    void
    f64vec(const std::vector<double> &v)
    {
        u64(v.size());
        for (double x : v)
            f64(x);
    }

  private:
    std::string &out_;
};

/** Failure-latching little-endian decoder over a byte range. */
class BinDec
{
  public:
    BinDec(const char *data, std::size_t n)
        : p_(data), end_(data + n)
    {
    }

    explicit BinDec(const std::string &s) : BinDec(s.data(), s.size())
    {
    }

    /** True while every read so far was in bounds. */
    bool ok() const { return !failed_; }

    /** Bytes not yet consumed. */
    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end_ - p_);
    }

    /** Mark the blob bad from the caller's side (bad magic, ...). */
    void fail() { failed_ = true; }

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return static_cast<std::uint8_t>(p_[-1]);
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t v;
        std::memcpy(&v, p_ - 4, 4);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t v;
        std::memcpy(&v, p_ - 8, 8);
        return v;
    }

    std::int64_t
    i64()
    {
        const std::uint64_t u = u64();
        std::int64_t v;
        std::memcpy(&v, &u, 8);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t u = u64();
        double v;
        std::memcpy(&v, &u, 8);
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (failed_ || n > remaining()) {
            failed_ = true;
            return {};
        }
        std::string s(p_, static_cast<std::size_t>(n));
        p_ += n;
        return s;
    }

    std::vector<double>
    f64vec()
    {
        const std::uint64_t n = u64();
        if (failed_ || n * 8 > remaining()) {
            failed_ = true;
            return {};
        }
        std::vector<double> v(static_cast<std::size_t>(n));
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = f64();
        return v;
    }

  private:
    bool
    take(std::size_t n)
    {
        if (failed_ || remaining() < n) {
            failed_ = true;
            return false;
        }
        p_ += n;
        return true;
    }

    const char *p_;
    const char *end_;
    bool failed_ = false;
};

} // namespace dlw

#endif // DLW_COMMON_BINENC_HH
