/**
 * @file
 * Batch-at-a-time characterization kernels with runtime SIMD
 * dispatch.
 *
 * The hot accumulators — histogram binning, binned arrival counting,
 * the interarrival-gap moment fold, totals — all reduce to tight
 * loops over one dense column of the SoA trace::RequestBatch.  This
 * layer lifts those loops into per-ISA kernels (scalar reference,
 * SSE2, AVX2) selected once at startup by CPUID, overridable with
 * DLW_SIMD=scalar|sse2|avx2|auto.
 *
 * The contract that makes dispatch safe everywhere byte-identity is
 * promised (thread counts, batch sizes, daemon checkpoints): every
 * kernel is bit-identical to the scalar reference on the same input.
 * That is achieved by construction, not by tolerance:
 *
 *  - classification and bin-index math use the exact scalar
 *    expression tree (subtract, IEEE divide, truncate), which SIMD
 *    lanes reproduce bit-for-bit because those operations are
 *    correctly rounded element-wise;
 *  - counts are integers carried in doubles; adding a run length k
 *    equals k unit adds exactly while bins stay below 2^53;
 *  - the one genuinely order-sensitive fold, the Welford moment
 *    update, is defined as a fixed 4-lane round-robin tree
 *    (SummaryLanes) keyed by the global element index, so the scalar
 *    and vector paths walk the identical tree and results cannot
 *    depend on how the stream was chunked into batches.
 *
 * Kernels never touch the metrics registry (obs sits above stats in
 * the link order); core wires in the core.kernel.* metrics.
 */

#ifndef DLW_STATS_SIMD_SIMD_HH
#define DLW_STATS_SIMD_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace dlw
{

class BinEnc;
class BinDec;

namespace stats
{

class Summary;

namespace simd
{

/** Instruction sets a kernel table can be specialized for. */
enum class Isa : int
{
    kScalar = 0, ///< portable reference path (ground truth)
    kSse2 = 1,   ///< x86-64 baseline vectors (2 doubles / 2 ticks)
    kAvx2 = 2,   ///< 256-bit vectors (4 doubles / 4 ticks)
};

/** bin index meaning "below the histogram range". */
constexpr std::int32_t kBinUnderflow = -1;
/** bin index meaning "at or above the histogram range". */
constexpr std::int32_t kBinOverflow = -2;

/** Number of independent Welford lanes in a SummaryLanes fold. */
constexpr std::size_t kSummaryLanes = 4;

/**
 * Streaming moments folded over a fixed 4-lane round-robin tree.
 *
 * Element j of the observation stream (counted from the first add
 * ever, across batches) lands in lane j % 4; each lane runs the
 * plain Welford/Chan update, and combined() merges the four lanes in
 * fixed order through Summary::merge.  Because lane membership
 * depends only on the global element index, the result is invariant
 * to batch chunking — and because the per-element update tree is
 * identical in the scalar and SIMD kernels, it is invariant to the
 * dispatched ISA as well.
 *
 * The lane state is public plain-old-data so the per-ISA kernels can
 * load it straight into vector registers.
 */
class SummaryLanes
{
  public:
    SummaryLanes() { clear(); }

    /** Reset to the empty state (cursor back to lane 0). */
    void clear();

    /** Add one observation to the cursor lane and advance. */
    void add(double x);

    /** Add a batch through the dispatched kernel. */
    void addBatch(const double *x, std::size_t n);

    /** Observations folded so far, over all lanes. */
    std::uint64_t count() const;

    /** Merge the lanes (fixed order) into one Summary. */
    Summary combined() const;

    /** Append the full lane state (bit-exact). */
    void saveState(BinEnc &enc) const;

    /** Restore state written by saveState(); false on a bad blob. */
    bool loadState(BinDec &dec);

    // Raw lane state.  Counts are whole numbers carried as doubles
    // so the vector update needs no int<->double traffic; exact
    // below 2^53 observations per lane.
    alignas(32) double n[kSummaryLanes];
    alignas(32) double mean[kSummaryLanes];
    alignas(32) double m2[kSummaryLanes];
    alignas(32) double m3[kSummaryLanes];
    alignas(32) double m4[kSummaryLanes];
    alignas(32) double mn[kSummaryLanes];
    alignas(32) double mx[kSummaryLanes];
    /** Lane the next observation lands in (0..3). */
    std::uint32_t next;
};

/**
 * One ISA's kernel table.  All functions are pure loops over caller
 * storage; none allocate, none touch globals.
 */
struct KernelOps
{
    /**
     * Classify n samples against an equal-width bin layout
     * [lo, hi): idx[i] is the bin in [0, bins), or kBinUnderflow /
     * kBinOverflow.  Indices are computed exactly like
     * LinearHistogram::addWeighted — (x - lo) * inv_width with
     * inv_width the histogram's precomputed reciprocal bin width,
     * truncated, clamped to bins - 1 — so the scatter the caller
     * performs lands every sample in the same bin the scalar
     * histogram would have chosen.  (Multiplying by the reciprocal
     * rather than dividing is what lets the vector kernels beat the
     * scalar loop: a divide-based map is divider-bound on both
     * sides.)  NaN samples are the caller's problem
     * (LinearHistogram has never defined them).
     */
    void (*bin_linear)(const double *x, std::size_t n, double lo,
                       double hi, double inv_width,
                       std::int32_t bins, std::int32_t *idx);

    /**
     * Same contract for log-spaced bins: underflow is !(x >= lo)
     * (catching NaN and non-positive samples exactly like
     * LogHistogram), in-range indices are
     * (log10(x) - log_lo) * inv_log_width truncated and clamped.
     * log10 stays scalar libm in every ISA — vector log
     * approximations are not bit-reproducible — so only the
     * classification and bin map vectorize.
     */
    void (*bin_log)(const double *x, std::size_t n, double lo,
                    double hi, double log_lo, double inv_log_width,
                    std::int32_t bins, std::int32_t *idx);

    /**
     * Count arrival ticks into fixed-width bins:
     * bins[(t[i] - start) / width] += 1.0 for a prefix of the input.
     * Returns how many elements were consumed; processing stops
     * early at the first element with t < start or with a bin index
     * >= nbins (the caller grows the series and resumes).  Sorted
     * input is the fast path — the vector kernels batch runs of
     * same-bin ticks into one add — but correctness does not depend
     * on order: an out-of-run element simply starts a new run.
     * Exact while bin values are integral counts below 2^53.
     */
    std::size_t (*count_sorted)(const Tick *t, std::size_t n,
                                Tick start, Tick width, double *bins,
                                std::size_t nbins);

    /**
     * count_sorted, but only elements with flags[i] == want are
     * counted.  Every element still bounds-checks its bin (same
     * early-stop contract), so the consumed prefix is independent of
     * the flag column.
     */
    std::size_t (*count_sorted_if)(const Tick *t,
                                   const std::uint8_t *flags,
                                   std::uint8_t want, std::size_t n,
                                   Tick start, Tick width,
                                   double *bins, std::size_t nbins);

    /**
     * Interarrival gaps: out[0] = double(t[0] - prev), out[i] =
     * double(t[i] - t[i-1]).  The int64 -> double conversion is
     * correctly rounded in every ISA (the vector kernels use the
     * exact split-conversion identity), matching static_cast.
     */
    void (*gaps_i64)(const Tick *t, std::size_t n, Tick prev,
                     double *out);

    /**
     * Fold n observations into the 4-lane Welford tree.  Inputs must
     * be non-NaN (gaps and counts always are); denormals and
     * infinities are fine.
     */
    void (*welford_add)(SummaryLanes &lanes, const double *x,
                        std::size_t n);

    /** Number of bytes equal to want (read counting over Op). */
    std::uint64_t (*count_eq_u8)(const std::uint8_t *v, std::size_t n,
                                 std::uint8_t want);

    /** Sum of u32 values, accumulated mod 2^64 (block totals). */
    std::uint64_t (*sum_u32)(const std::uint32_t *v, std::size_t n);
};

/** True when this build + CPU can dispatch the given ISA. */
bool supported(Isa isa);

/** The widest supported ISA (what "auto" resolves to). */
Isa bestSupported();

/** The ISA the active kernel table was built for. */
Isa activeIsa();

/** "scalar" / "sse2" / "avx2". */
const char *isaName(Isa isa);

/**
 * Parse a DLW_SIMD value.  Returns false on an unknown token;
 * "auto" sets is_auto and leaves out untouched.
 */
bool parseChoice(std::string_view s, Isa &out, bool &is_auto);

/**
 * Select the kernel table.  An unsupported request clamps to the
 * best supported ISA (with a warning) rather than failing: the
 * override is a tuning knob, not a correctness switch, precisely
 * because every table computes identical bits.
 */
void force(Isa isa);

/**
 * Apply the DLW_SIMD environment override (scalar|sse2|avx2|auto).
 * Unset or "auto" selects bestSupported().  Called lazily by ops(),
 * so processes that never touch the env get auto dispatch.
 */
void configureFromEnv();

/** The active kernel table (initializes from DLW_SIMD on first use). */
const KernelOps &ops();

} // namespace simd
} // namespace stats
} // namespace dlw

#endif // DLW_STATS_SIMD_SIMD_HH
