/**
 * @file
 * Minimal "--key value" command-line option parser used by the
 * tools.  Unknown keys are tolerated at parse time and surfaced via
 * unknownKeys() so a tool can reject typos explicitly.
 */

#ifndef DLW_COMMON_OPTIONS_HH
#define DLW_COMMON_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dlw
{

/**
 * Parsed option map with typed, defaulted accessors.
 */
class Options
{
  public:
    /**
     * Parse argv[first..argc).  Every token must be of the form
     * "--key value" or "--key=value"; violations are fatal
     * (user error).
     */
    Options(int argc, char *const *argv, int first);

    /**
     * Grammar pre-check for CLI boundaries that want to turn a
     * malformed command line into a usage error instead of the
     * constructor's fatal: returns a description of the first
     * violation ("option '--x' needs a value"), or the empty
     * string when argv[first..argc) parses cleanly.
     */
    static std::string shapeError(int argc, char *const *argv,
                                  int first);

    /** True when the key was supplied. */
    bool has(const std::string &key) const;

    /** String value or fallback. */
    std::string get(const std::string &key,
                    const std::string &fallback) const;

    /** Double value or fallback (fatal on malformed numbers). */
    double getDouble(const std::string &key, double fallback) const;

    /** Integer value or fallback (fatal on malformed integers). */
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;

    /** Keys supplied but never queried by any accessor. */
    std::vector<std::string> unusedKeys() const;

    /** Every key supplied on the command line, sorted. */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
    mutable std::map<std::string, bool> used_;
};

} // namespace dlw

#endif // DLW_COMMON_OPTIONS_HH
