/**
 * @file
 * Snapshot-able incremental characterization for long-running
 * sessions.
 *
 * CharacterizationPass::run() drives accumulators over a source it
 * controls: it pulls until exhaustion, then finishes.  A daemon
 * session cannot hand over control like that — batches arrive
 * whenever the network delivers them, and a live report may be
 * wanted at any instant in between.  LiveCharacterization inverts
 * the pass: the caller pushes batches as they materialize, and the
 * trace-derived accumulators (burstiness, read/write dynamics,
 * totals) are *copied* to produce a mid-stream snapshot — finish()
 * runs on the copy, so the live state keeps accumulating untouched.
 *
 * The result of finish() is byte-identical to running the same
 * records through `dlwtool characterize` (both assemble the same
 * trace-derived subset of DriveCharacterization), which is the
 * contract the connection-storm harness asserts.
 */

#ifndef DLW_CORE_LIVE_HH
#define DLW_CORE_LIVE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/binenc.hh"
#include "common/status.hh"
#include "core/burstiness.hh"
#include "core/characterize.hh"
#include "core/pass.hh"
#include "core/rwmix.hh"
#include "trace/batch.hh"
#include "trace/stream.hh"

namespace dlw
{
namespace core
{

/**
 * Push-driven characterization of one request stream, with
 * mid-stream snapshots.
 *
 * Usage: construct with the stream header, observe() every batch in
 * arrival order, snapshot() at will, finish() exactly once at
 * end-of-stream.  observe() validates the whole-trace invariants
 * incrementally (sorted arrivals, inside the window, nonzero sizes)
 * and returns InvalidArgument when the stream violates them.
 */
class LiveCharacterization
{
  public:
    explicit LiveCharacterization(trace::MsStreamHeader meta);

    /** Stream metadata in force. */
    const trace::MsStreamHeader &meta() const { return meta_; }

    /** Requests observed so far. */
    std::uint64_t requests() const { return n_; }

    /**
     * Fold one batch into every accumulator.
     *
     * @return InvalidArgument when an arrival is out of order,
     *         outside the window, or a request has zero blocks.
     */
    Status observe(const trace::RequestBatch &batch);

    /**
     * Characterize the stream as seen so far without perturbing the
     * live state: the accumulators are copied and the copies are
     * finished.  Valid at any point, including before the first
     * batch and after finish().
     */
    DriveCharacterization snapshot() const;

    /**
     * Finish the live accumulators and assemble the final
     * characterization.  Call exactly once, after the last batch.
     */
    DriveCharacterization finish();

    /**
     * Append the full pre-finish state — stream header plus every
     * accumulator, bit-exact — for a crash-safe checkpoint.  Must
     * not be called after finish() (the burstiness scales are
     * consumed there).
     */
    void saveState(BinEnc &enc) const;

    /**
     * Reconstruct a live characterization from saveState() bytes.
     * Feeding the restored instance the remainder of the stream
     * yields reports byte-identical to an uninterrupted run.
     *
     * @return nullptr when the blob is truncated or garbled.
     */
    static std::unique_ptr<LiveCharacterization> restore(BinDec &dec);

  private:
    DriveCharacterization assemble(const BurstinessAccumulator &b,
                                   const RwMixAccumulator &rw,
                                   const TraceTotalsAccumulator &t)
        const;

    trace::MsStreamHeader meta_;
    BurstinessAccumulator burstiness_;
    RwMixAccumulator rwmix_;
    TraceTotalsAccumulator totals_;
    std::uint64_t n_ = 0;
    Tick prev_ = 0;
    bool finished_ = false;
};

/**
 * Render a characterization as a single-line JSON object (the
 * daemon's `GET /v1/sessions/<id>/report` payload).  Absent optional
 * fields are omitted; key order is fixed so the output is
 * deterministic.
 */
std::string renderCharacterizationJson(const DriveCharacterization &c);

} // namespace core
} // namespace dlw

#endif // DLW_CORE_LIVE_HH
