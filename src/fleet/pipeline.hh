/**
 * @file
 * Sharded multi-drive characterization pipeline.
 *
 * Scales the repo's single-drive path (generate a workload, service
 * it through the mechanical drive model, characterize the result) to
 * N drives: each drive is one shard, shards run concurrently on the
 * work-stealing pool, and the merge layer reduces them — in drive
 * order — to a fleet aggregate with the paper's cross-drive views
 * (E11 variability spread, E8 saturated-streaming structure).
 *
 * Output is bit-identical at any thread count; see fleet/merge.hh
 * for the three rules that guarantee it.
 */

#ifndef DLW_FLEET_PIPELINE_HH
#define DLW_FLEET_PIPELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "fleet/merge.hh"
#include "trace/batch.hh"

namespace dlw
{
namespace fleet
{

/** Workload class every drive of the fleet runs. */
enum class FleetPreset
{
    Oltp,
    FileServer,
    Streaming,
    Backup,
    /** Rotate the four classes by drive index (the default). */
    Mixed,
};

/** Human-readable preset name. */
const char *fleetPresetName(FleetPreset preset);

/** Parse a preset name; InvalidArgument on an unknown one. */
StatusOr<FleetPreset> parseFleetPreset(const std::string &name);

/**
 * Fleet run configuration.
 */
struct FleetConfig
{
    /** Number of drives to characterize. */
    std::size_t drives = 64;
    /** Worker threads (does not affect output, only wall time). */
    std::size_t threads = 1;
    /** Workload preset. */
    FleetPreset preset = FleetPreset::Mixed;
    /** Master seed; drive k uses stream fork(k). */
    std::uint64_t seed = 20090614;
    /** Mean arrival rate per drive, requests/second. */
    double rate = 60.0;
    /** Observation window per drive. */
    Tick window = 2 * kMinute;
    /** Use the nearline drive model instead of enterprise. */
    bool nearline = false;
    /**
     * Attempts per shard (>= 1).  A shard that keeps failing after
     * max_attempts tries is recorded in FleetResult::failures rather
     * than failing the run.
     */
    std::size_t max_attempts = 3;
    /**
     * Stream each shard's workload straight through the drive model
     * (the default): requests are synthesized per batch and
     * completions distilled into the shard statistics as they
     * happen, so a shard's resident footprint is O(batch) instead of
     * O(requests).  The report is byte-identical either way; off
     * exists for A/B checks and as the reference path.
     */
    bool stream = true;
    /** Batch capacity (requests) used by the streaming path. */
    std::size_t batch_requests = trace::kDefaultBatchRequests;
    /**
     * Tenant/class tag the whole run executes under: every shard
     * task lands in this tag's priority lane and every generated
     * batch carries it.  Defaults to the single-tenant identity, so
     * untagged runs are byte-identical to the pre-QoS pipeline.
     */
    qos::TagId tag;
};

/**
 * One drive the fleet could not characterize.
 */
struct ShardFailure
{
    /** Drive index of the failed shard. */
    std::size_t index = 0;
    /** Drive id the shard would have carried. */
    std::string drive_id;
    /** Attempts spent before giving up. */
    std::size_t attempts = 0;
    /** Final error of the last attempt. */
    Status error;
};

/**
 * Everything a fleet run produces.
 *
 * A run with k failed drives still yields the other N - k shards and
 * their aggregate; the failures ride alongside, in drive order, so a
 * report can render both.
 */
struct FleetResult
{
    /** Surviving per-drive shards, ascending by drive index. */
    std::vector<DriveShard> shards;
    /** Ordered reduction of the surviving shards. */
    FleetAggregate aggregate;
    /** Drives that failed every attempt, ascending by index. */
    std::vector<ShardFailure> failures;
    /** Total retry attempts spent across all shards. */
    std::uint64_t retries = 0;
};

/**
 * Characterize one drive of the fleet.
 *
 * Pure function of (config, index): generates the drive's workload
 * from RNG stream fork(index), services it through the disk model,
 * and distils the shard statistics.  Safe to call from any thread.
 * Throws StatusError on failure (including the armed "fleet.shard"
 * fault point, keyed by drive index).
 */
DriveShard characterizeDrive(const FleetConfig &config,
                             std::size_t index);

/**
 * Run the whole fleet on config.threads workers and reduce.
 *
 * Failure isolation: a shard that throws is retried up to
 * config.max_attempts times with capped exponential backoff (the
 * jitter is seeded from config.seed, so the retry schedule is as
 * reproducible as the shards themselves); a shard that exhausts its
 * attempts lands in FleetResult::failures and the rest of the fleet
 * carries on.  The surviving aggregate and the failure list are both
 * byte-identical at any thread count.
 */
FleetResult runFleet(const FleetConfig &config);

/**
 * Render the cross-drive variability report (E8/E11 view).
 *
 * Deliberately excludes thread count and timing so the report is
 * byte-identical across thread counts.  When shards failed, a
 * failure appendix follows the aggregate tables: one table row plus
 * one machine-readable "# failure ..." line per failed drive.
 */
std::string renderFleetReport(const FleetConfig &config,
                              const FleetResult &result);

/**
 * Force-register every fleet.* and stats.* metric (pipeline, pool,
 * and merge layers) so a snapshot taken before — or without — a fleet
 * run still carries the full schema at zero.
 */
void registerFleetMetrics();

} // namespace fleet
} // namespace dlw

#endif // DLW_FLEET_PIPELINE_HH
