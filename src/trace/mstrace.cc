#include "trace/mstrace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dlw
{
namespace trace
{

MsTrace::MsTrace(std::string drive_id, Tick start, Tick duration)
    : drive_id_(std::move(drive_id)), start_(start), duration_(duration)
{
    dlw_assert(duration >= 0, "negative trace duration");
}

void
MsTrace::setWindow(Tick start, Tick duration)
{
    dlw_assert(duration >= 0, "negative trace duration");
    start_ = start;
    duration_ = duration;
}

void
MsTrace::append(const Request &req)
{
    dlw_assert(req.blocks > 0, "zero-length request");
    reqs_.push_back(req);
}

void
MsTrace::appendExtending(const Request &req)
{
    append(req);
    if (req.arrival < start_)
        start_ = req.arrival;
    if (req.arrival >= start_ + duration_)
        duration_ = req.arrival - start_ + 1;
}

const Request &
MsTrace::at(std::size_t i) const
{
    dlw_assert(i < reqs_.size(), "request index out of range");
    return reqs_[i];
}

void
MsTrace::sortByArrival()
{
    std::stable_sort(reqs_.begin(), reqs_.end(), ByArrival{});
}

Status
MsTrace::checkValid() const
{
    auto complain = [&](const std::string &msg) {
        return Status::corruptData("trace '" + drive_id_ + "': " + msg);
    };

    Tick prev = start_;
    for (std::size_t i = 0; i < reqs_.size(); ++i) {
        const Request &r = reqs_[i];
        if (r.blocks == 0)
            return complain("request with zero blocks");
        if (r.arrival < prev)
            return complain("arrivals not sorted");
        if (r.arrival < start_ || r.arrival >= end())
            return complain("arrival outside observation window");
        prev = r.arrival;
    }
    return Status();
}

bool
MsTrace::validate(bool fail_hard) const
{
    Status s = checkValid();
    if (s.ok())
        return true;
    if (fail_hard)
        throw StatusError(s);
    return false;
}

std::size_t
MsTrace::readCount() const
{
    return static_cast<std::size_t>(
        std::count_if(reqs_.begin(), reqs_.end(),
                      [](const Request &r) { return r.isRead(); }));
}

std::size_t
MsTrace::writeCount() const
{
    return reqs_.size() - readCount();
}

double
MsTrace::readFraction() const
{
    if (reqs_.empty())
        return 0.0;
    return static_cast<double>(readCount()) /
           static_cast<double>(reqs_.size());
}

std::uint64_t
MsTrace::totalBytes() const
{
    std::uint64_t total = 0;
    for (const Request &r : reqs_)
        total += r.bytes();
    return total;
}

double
MsTrace::meanRequestBlocks() const
{
    if (reqs_.empty())
        return 0.0;
    std::uint64_t blocks = 0;
    for (const Request &r : reqs_)
        blocks += r.blocks;
    return static_cast<double>(blocks) /
           static_cast<double>(reqs_.size());
}

double
MsTrace::arrivalRate() const
{
    if (reqs_.empty() || duration_ <= 0)
        return 0.0;
    return static_cast<double>(reqs_.size()) / ticksToSeconds(duration_);
}

std::vector<double>
MsTrace::interarrivals() const
{
    std::vector<double> gaps;
    if (reqs_.size() < 2)
        return gaps;
    gaps.reserve(reqs_.size() - 1);
    for (std::size_t i = 1; i < reqs_.size(); ++i) {
        gaps.push_back(static_cast<double>(reqs_[i].arrival -
                                           reqs_[i - 1].arrival));
    }
    return gaps;
}

stats::BinnedSeries
MsTrace::binCounts(Tick bin_width, Filter which) const
{
    auto bins = static_cast<std::size_t>(
        duration_ > 0 ? (duration_ + bin_width - 1) / bin_width : 0);
    stats::BinnedSeries series(start_, bin_width, bins);
    for (const Request &r : reqs_) {
        if (which == Filter::Reads && !r.isRead())
            continue;
        if (which == Filter::Writes && !r.isWrite())
            continue;
        series.accumulateAt(r.arrival, 1.0);
    }
    return series;
}

stats::BinnedSeries
MsTrace::binBytes(Tick bin_width, Filter which) const
{
    auto bins = static_cast<std::size_t>(
        duration_ > 0 ? (duration_ + bin_width - 1) / bin_width : 0);
    stats::BinnedSeries series(start_, bin_width, bins);
    for (const Request &r : reqs_) {
        if (which == Filter::Reads && !r.isRead())
            continue;
        if (which == Filter::Writes && !r.isWrite())
            continue;
        series.accumulateAt(r.arrival, static_cast<double>(r.bytes()));
    }
    return series;
}

double
MsTrace::sequentialFraction() const
{
    if (reqs_.size() < 2)
        return 0.0;
    std::size_t seq = 0;
    for (std::size_t i = 1; i < reqs_.size(); ++i) {
        if (reqs_[i].lba == reqs_[i - 1].lbaEnd())
            ++seq;
    }
    return static_cast<double>(seq) /
           static_cast<double>(reqs_.size() - 1);
}

} // namespace trace
} // namespace dlw
