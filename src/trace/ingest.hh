/**
 * @file
 * Corrupt-record policy and per-file ingestion statistics.
 *
 * At fleet scale (thousands of drives, three trace granularities)
 * truncated files and mangled records are routine, so every trace
 * reader takes an IngestOptions choosing what a corrupt record does:
 *
 *   kAbort          stop and return the error (the strict default —
 *                   matches the seed readers' behaviour, minus the
 *                   process exit)
 *   kSkipAndCount   drop the record, count it, keep reading
 *   kBestEffortClamp salvage the record when a well-defined repair
 *                   exists (zero-length request -> 1 block, lowercase
 *                   op code, out-of-range counter pinned to its
 *                   domain); otherwise skip and count
 *
 * Whatever the policy, the reader fills an IngestStats so reports can
 * show exactly what was read, skipped, clamped, and recovered.
 * Header-level corruption (bad magic, missing format line) is never
 * recoverable: there is nothing to resynchronize on.
 */

#ifndef DLW_TRACE_INGEST_HH
#define DLW_TRACE_INGEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "obs/span.hh"

namespace dlw
{
namespace trace
{

/** What a reader does with a corrupt record. */
enum class RecordPolicy
{
    kAbort,
    kSkipAndCount,
    kBestEffortClamp,
};

/** Human-readable policy name ("abort" / "skip" / "clamp"). */
const char *recordPolicyName(RecordPolicy policy);

/** Parse "abort" / "skip" / "clamp". */
StatusOr<RecordPolicy> parseRecordPolicy(const std::string &name);

/**
 * What one ingestion pass read, dropped, and repaired.
 */
struct IngestStats
{
    /** Records accepted into the trace. */
    std::uint64_t records_read = 0;
    /** Corrupt records dropped under skip/clamp policies. */
    std::uint64_t records_skipped = 0;
    /** Records salvaged by clamping a field into its domain. */
    std::uint64_t records_clamped = 0;
    /** Corrupt events observed (skipped + clamped + aborting one). */
    std::uint64_t errors = 0;
    /** Input bytes of all accepted records. */
    std::uint64_t bytes_read = 0;
    /**
     * Input bytes of records accepted after the first corrupt event —
     * data the kAbort policy would have thrown away.
     */
    std::uint64_t bytes_recovered = 0;
    /** First few error messages, for reports. */
    std::vector<std::string> error_samples;

    /** True when any corruption was observed. */
    bool dirty() const { return errors != 0; }

    /** Record one corrupt event (caps stored samples). */
    void noteError(std::string msg, std::size_t max_samples);

    /** Fold another file's stats into this one. */
    void merge(const IngestStats &other);

    /** One-line summary ("read 961, skipped 4, clamped 2, ..."). */
    std::string summary() const;
};

/**
 * Reader configuration.
 */
struct IngestOptions
{
    RecordPolicy policy = RecordPolicy::kAbort;
    /** Cap on IngestStats::error_samples. */
    std::size_t max_error_samples = 4;
};

/**
 * RAII observability hook shared by every trace reader: times the
 * whole pass as an "ingest.parse" span and, on destruction, adds the
 * enclosed IngestStats to the process-wide ingest.* counters (see
 * docs/METRICS.md).  Costs one relaxed atomic load when metrics are
 * disarmed, like everything in src/obs.
 */
class IngestMetricsScope
{
  public:
    /** @param st The pass's stats; must outlive this scope. */
    explicit IngestMetricsScope(const IngestStats &st);
    ~IngestMetricsScope();

    IngestMetricsScope(const IngestMetricsScope &) = delete;
    IngestMetricsScope &operator=(const IngestMetricsScope &) = delete;

  private:
    const IngestStats &st_;
    obs::ScopedSpan span_;
};

/**
 * Force-register every ingest.* metric so snapshots cover the
 * ingestion schema even before a reader runs (dlwtool --metrics
 * calls this up front).
 */
void registerIngestMetrics();

} // namespace trace
} // namespace dlw

#endif // DLW_TRACE_INGEST_HH
