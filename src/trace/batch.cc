#include "trace/batch.hh"

#include "common/logging.hh"

namespace dlw
{
namespace trace
{

RequestBatch::RequestBatch(std::size_t capacity)
    : capacity_(capacity)
{
    dlw_assert(capacity > 0, "batch capacity must be positive");
    arrivals_.reserve(capacity);
    lbas_.reserve(capacity);
    blocks_.reserve(capacity);
    ops_.reserve(capacity);
}

void
RequestBatch::clear()
{
    arrivals_.clear();
    lbas_.clear();
    blocks_.clear();
    ops_.clear();
}

void
RequestBatch::append(const Request &req)
{
    dlw_assert(!full(), "append to a full batch");
    arrivals_.push_back(req.arrival);
    lbas_.push_back(req.lba);
    blocks_.push_back(req.blocks);
    ops_.push_back(req.op);
}

Request
RequestBatch::get(std::size_t i) const
{
    dlw_assert(i < size(), "batch index out of range");
    Request r;
    r.arrival = arrivals_[i];
    r.lba = lbas_[i];
    r.blocks = blocks_[i];
    r.op = ops_[i];
    return r;
}

std::size_t
RequestBatch::byteSize() const
{
    return size() * (sizeof(Tick) + sizeof(Lba) + sizeof(BlockCount) +
                     sizeof(Op));
}

} // namespace trace
} // namespace dlw
