/**
 * @file
 * Fleet-engine scaling benchmark.
 *
 * Runs the 64-drive mixed preset at 1, 2, 4 and 8 worker threads,
 * reports wall time and speedup per configuration, and verifies the
 * determinism contract on the way: every thread count must render a
 * byte-identical fleet report.  Speedup approaches min(threads,
 * cores) because shards are embarrassingly parallel and the ordered
 * reduction is a negligible serial tail (Amdahl fraction well under
 * 1%).
 */

#include <chrono>
#include <iostream>

#include "benchutil.hh"
#include "core/report.hh"
#include "fleet/pipeline.hh"
#include "fleet/pool.hh"

#include "obs/export.hh"

using namespace dlw;

namespace
{

fleet::FleetConfig
scalingConfig(std::size_t threads)
{
    fleet::FleetConfig cfg;
    cfg.drives = 64;
    cfg.threads = threads;
    cfg.preset = fleet::FleetPreset::Mixed;
    cfg.seed = bench::kSeed;
    cfg.rate = 60.0;
    cfg.window = 2 * kMinute;
    return cfg;
}

} // anonymous namespace

int
main()
{
    obs::BenchReportGuard obs_guard("fleet");
    const std::size_t cores = fleet::ThreadPool::hardwareThreads();
    std::cout << "Fleet scaling: 64 drives, mixed preset, "
              << cores << " hardware threads\n\n";

    // Warm-up pass: fault in code and allocator arenas so the
    // 1-thread baseline is not penalized for going first.
    {
        fleet::FleetConfig warm = scalingConfig(1);
        warm.drives = 8;
        fleet::runFleet(warm);
    }

    std::string baseline_report;
    double baseline_s = 0.0;
    bool all_identical = true;

    core::Table t("fleet wall time vs. threads",
                  {"threads", "wall s", "speedup", "drives/s"});
    for (std::size_t threads : {1, 2, 4, 8}) {
        const fleet::FleetConfig cfg = scalingConfig(threads);
        const auto t0 = std::chrono::steady_clock::now();
        fleet::FleetResult result = fleet::runFleet(cfg);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();

        const std::string report =
            fleet::renderFleetReport(cfg, result);
        if (threads == 1) {
            baseline_report = report;
            baseline_s = secs;
        } else if (report != baseline_report) {
            all_identical = false;
        }

        t.addRow({std::to_string(threads), core::cell(secs),
                  core::cell(baseline_s / secs),
                  core::cell(static_cast<double>(cfg.drives) / secs)});
    }
    t.print(std::cout);

    std::cout << "\ndeterminism: reports at 2/4/8 threads "
              << (all_identical ? "byte-identical" : "DIFFER")
              << " vs. 1 thread\n";
    std::cout << "\nThe aggregate the contract protects:\n\n"
              << baseline_report;

    std::cout << "\nShape check: speedup tracks min(threads, "
              << cores << " cores); the serial reduction tail is "
                 "too small to bend the curve.\n";
    return all_identical ? 0 : 1;
}
