/**
 * @file
 * Unit tests for the sim/eventq discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"

namespace dlw
{
namespace sim
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&](Tick) { order.push_back(3); });
    eq.schedule(10, [&](Tick) { order.push_back(1); });
    eq.schedule(20, [&](Tick) { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, SameTickPriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&](Tick) { order.push_back(2); }, Priority::Normal);
    eq.schedule(5, [&](Tick) { order.push_back(3); }, Priority::Low);
    eq.schedule(5, [&](Tick) { order.push_back(1); }, Priority::High);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickSamePriorityFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i](Tick) { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick fired = -1;
    eq.schedule(100, [&](Tick t) {
        eq.scheduleIn(50, [&](Tick t2) { fired = t2; });
        (void)t;
    });
    eq.run();
    EXPECT_EQ(fired, 150);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&](Tick) { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, CancelTwiceIsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [](Tick) {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
    eq.run();
}

TEST(EventQueue, CancelFiredEventIsHarmless)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [](Tick) {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvances)
{
    EventQueue eq;
    std::vector<Tick> fired;
    eq.schedule(10, [&](Tick t) { fired.push_back(t); });
    eq.schedule(20, [&](Tick t) { fired.push_back(t); });
    eq.schedule(30, [&](Tick t) { fired.push_back(t); });
    EXPECT_EQ(eq.run(20), 2u); // events at the limit still run
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.run(), 1u);
}

TEST(EventQueue, RunToExhaustionAdvancesToLimit)
{
    EventQueue eq;
    eq.schedule(5, [](Tick) {});
    eq.run(100);
    EXPECT_EQ(eq.now(), 100);
}

TEST(EventQueue, EventsScheduledDuringRun)
{
    EventQueue eq;
    int chain = 0;
    std::function<void(Tick)> next = [&](Tick) {
        if (++chain < 5)
            eq.scheduleIn(10, next);
    };
    eq.schedule(0, next);
    EXPECT_EQ(eq.run(), 5u);
    EXPECT_EQ(eq.now(), 40);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&](Tick) { ++count; });
    eq.schedule(2, [&](Tick) { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, PendingCountsLiveEvents)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EventId a = eq.schedule(1, [](Tick) {});
    eq.schedule(2, [](Tick) {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueDeathTest, PastScheduling)
{
    EventQueue eq;
    eq.schedule(10, [](Tick) {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [](Tick) {}), "in the past");
    EXPECT_DEATH(eq.scheduleIn(-1, [](Tick) {}), "negative");
}

} // anonymous namespace
} // namespace sim
} // namespace dlw
