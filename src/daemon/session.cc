#include "daemon/session.hh"

#include <cstdio>
#include <sstream>
#include <utility>

namespace dlw
{
namespace daemon
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const char *
sessionStateName(SessionState s)
{
    switch (s) {
    case SessionState::kStreaming:
        return "streaming";
    case SessionState::kDone:
        return "done";
    case SessionState::kAborted:
        return "aborted";
    }
    return "?";
}

Session::Session(std::string id, std::string tenant,
                 net::StreamFormat format)
    : id_(std::move(id)), tenant_(std::move(tenant)),
      format_(format), decoder_(format, net::kMaxFrameBytes)
{
}

Status
Session::consume(net::ByteQueue &in)
{
    Status s = decoder_.drain(in);
    if (!s.ok()) {
        abort(s.message());
        return s;
    }
    s = foldPending();
    if (!s.ok())
        abort(s.message());
    return s;
}

Status
Session::finishInput(net::ByteQueue &in)
{
    // A CSV file whose last record line has no trailing newline is
    // legal from disk (getline delivers it), so it must be legal
    // over the wire too: complete the line and drain it.
    if (format_ == net::StreamFormat::kCsv && !in.empty()) {
        in.append("\n", 1);
        Status s = consume(in);
        if (!s.ok())
            return s;
    }
    Status s = decoder_.endOfInput();
    if (!s.ok()) {
        abort(s.message());
        return s;
    }
    s = foldPending();
    if (!s.ok()) {
        abort(s.message());
        return s;
    }
    // A header-only stream is valid (an empty trace characterizes to
    // an empty report), but no header at all cannot reach here: the
    // decoder fails endOfInput() first.
    std::lock_guard<std::mutex> lock(mu_);
    if (live_ == nullptr) {
        live_ = std::make_unique<core::LiveCharacterization>(
            decoder_.header());
    }
    return Status();
}

void
Session::abort(const std::string &why)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == SessionState::kStreaming) {
        state_ = SessionState::kAborted;
        error_ = why;
    }
}

std::string
Session::finalReportText()
{
    std::lock_guard<std::mutex> lock(mu_);
    const core::DriveCharacterization c = live_->finish();
    if (state_ == SessionState::kStreaming)
        state_ = SessionState::kDone;
    return c.render();
}

std::string
Session::reportJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "{\"session\":\"" << jsonEscape(id_) << "\",\"tenant\":\""
       << jsonEscape(tenant_) << "\",\"state\":\""
       << sessionStateName(state_) << "\"";
    if (!error_.empty())
        os << ",\"error\":\"" << jsonEscape(error_) << "\"";
    if (live_ != nullptr) {
        os << ",\"records\":" << live_->requests()
           << ",\"characterization\":"
           << core::renderCharacterizationJson(live_->snapshot());
    } else {
        os << ",\"records\":0";
    }
    os << "}\n";
    return os.str();
}

SessionState
Session::state() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
}

std::uint64_t
Session::records() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return live_ == nullptr ? 0 : live_->requests();
}

bool
Session::settleOnce()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (settled_)
        return false;
    settled_ = true;
    return true;
}

Status
Session::foldPending()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (live_ == nullptr) {
        if (!decoder_.headerReady())
            return Status();
        live_ = std::make_unique<core::LiveCharacterization>(
            decoder_.header());
    }
    while (decoder_.take(batch_)) {
        Status s = live_->observe(batch_);
        if (!s.ok())
            return s;
    }
    return Status();
}

} // namespace daemon
} // namespace dlw
