/**
 * @file
 * Unit tests for disk/scheduler.
 */

#include <gtest/gtest.h>

#include "disk/scheduler.hh"

namespace dlw
{
namespace disk
{
namespace
{

DiskGeometry
flatGeometry()
{
    // 100 cylinders of 10 blocks each.
    std::vector<Zone> zones = {{0, 1000, 10}};
    return DiskGeometry(std::move(zones), 7200);
}

QueuedRequest
reqAt(Lba lba, std::size_t index)
{
    trace::Request r;
    r.arrival = 0;
    r.lba = lba;
    r.blocks = 1;
    r.op = trace::Op::Read;
    return QueuedRequest{r, index};
}

TEST(Scheduler, FcfsAlwaysFront)
{
    DiskGeometry g = flatGeometry();
    Scheduler s(SchedPolicy::Fcfs);
    std::vector<QueuedRequest> q = {reqAt(900, 0), reqAt(10, 1),
                                    reqAt(500, 2)};
    EXPECT_EQ(s.pick(q, 50, g), 0u);
}

TEST(Scheduler, SstfPicksNearestCylinder)
{
    DiskGeometry g = flatGeometry();
    Scheduler s(SchedPolicy::Sstf);
    // Head at cylinder 50 (block 500).
    std::vector<QueuedRequest> q = {reqAt(900, 0), reqAt(480, 1),
                                    reqAt(10, 2)};
    EXPECT_EQ(s.pick(q, 50, g), 1u); // cylinder 48 is closest
}

TEST(Scheduler, SstfExactMatchWins)
{
    DiskGeometry g = flatGeometry();
    Scheduler s(SchedPolicy::Sstf);
    std::vector<QueuedRequest> q = {reqAt(900, 0), reqAt(505, 1)};
    EXPECT_EQ(s.pick(q, 50, g), 1u);
}

TEST(Scheduler, ElevatorSweepsUpThenReverses)
{
    DiskGeometry g = flatGeometry();
    Scheduler s(SchedPolicy::Elevator);
    // Head at 50, sweeping up: picks 60 not 45.
    std::vector<QueuedRequest> q = {reqAt(450, 0), reqAt(600, 1)};
    EXPECT_EQ(s.pick(q, 50, g), 1u);
    // Nothing above 90: reverses and picks the highest below.
    std::vector<QueuedRequest> q2 = {reqAt(450, 0), reqAt(100, 1)};
    EXPECT_EQ(s.pick(q2, 90, g), 0u);
}

TEST(Scheduler, ElevatorPrefersNearestAhead)
{
    DiskGeometry g = flatGeometry();
    Scheduler s(SchedPolicy::Elevator);
    std::vector<QueuedRequest> q = {reqAt(990, 0), reqAt(600, 1),
                                    reqAt(700, 2)};
    EXPECT_EQ(s.pick(q, 50, g), 1u);
}

TEST(Scheduler, SingleElementShortCircuits)
{
    DiskGeometry g = flatGeometry();
    for (auto p : {SchedPolicy::Fcfs, SchedPolicy::Sstf,
                   SchedPolicy::Elevator}) {
        Scheduler s(p);
        std::vector<QueuedRequest> q = {reqAt(990, 7)};
        EXPECT_EQ(s.pick(q, 0, g), 0u) << schedPolicyName(p);
    }
}

TEST(Scheduler, PolicyNames)
{
    EXPECT_STREQ(schedPolicyName(SchedPolicy::Fcfs), "FCFS");
    EXPECT_STREQ(schedPolicyName(SchedPolicy::Sstf), "SSTF");
    EXPECT_STREQ(schedPolicyName(SchedPolicy::Elevator), "ELEVATOR");
}

TEST(SchedulerDeathTest, EmptyQueue)
{
    DiskGeometry g = flatGeometry();
    Scheduler s(SchedPolicy::Fcfs);
    std::vector<QueuedRequest> q;
    EXPECT_DEATH(s.pick(q, 0, g), "empty queue");
}

} // anonymous namespace
} // namespace disk
} // namespace dlw
