/**
 * @file
 * Chrome trace_event JSON export for the timeline, plus the
 * signal-safe crash dump.
 *
 * renderChromeTrace emits the JSON Object Format of the Chrome
 * trace_event spec ({"traceEvents":[...]}), loadable directly in
 * Perfetto (ui.perfetto.dev) or chrome://tracing.  Begin/end pairs
 * that both survived in the ring are folded into complete ("X")
 * events with a duration; an unmatched begin — a stage that was
 * still running when the snapshot was taken, or whose end was
 * overwritten — stays a "B" event, which the viewers render as an
 * open slice.  Instants become "i" (thread-scoped), counter samples
 * become "C" tracks.
 *
 * The crash dump is the flight-recorder payoff: after
 * installTimelineCrashHandler(path), a fatal signal (SEGV, ABRT,
 * BUS, ILL, FPE) makes the process write the last-N events to
 * `path` before re-raising.  The handler uses only async-signal-safe
 * calls (open/write/close, no allocation, no locks) and emits the
 * raw B/E/i/C stream in the same trace_event array format, so the
 * tooling that opens a healthy trace opens a post-mortem one too.
 * Ring access on that path is necessarily unlocked and best-effort:
 * a torn event from a thread that was mid-emit is possible, a hang
 * or reentrant crash is not.
 */

#ifndef DLW_OBS_TIMELINE_EXPORT_HH
#define DLW_OBS_TIMELINE_EXPORT_HH

#include <string>

#include "common/status.hh"
#include "obs/timeline.hh"

namespace dlw
{
namespace obs
{

/**
 * Render a snapshot as Chrome trace_event JSON.
 *
 * @param snap Events to render (ascending ts, per timelineSnapshot).
 * @param pid  Process id to stamp on every event; tests pass a fixed
 *             value for golden output.
 */
std::string renderChromeTrace(const TimelineSnapshot &snap, int pid);

/** Render with the real process id. */
std::string renderChromeTrace(const TimelineSnapshot &snap);

/**
 * Render a snapshot plus a pre-rendered trace_event fragment —
 * comma-separated event objects, no enclosing brackets — appended
 * inside the same traceEvents array.  This is how `dlwtool stream
 * --trace-out` merges the server-side spans fetched from
 * /v1/timeline into the client's own timeline file.
 */
std::string renderChromeTrace(const TimelineSnapshot &snap, int pid,
                              const std::string &extra_events_json);

/**
 * Re-render the traceEvents of a Chrome trace document with every
 * "ts" shifted by `offset_us` microseconds (durations are left
 * alone), returning a comma-separated event fragment suitable for
 * the extra_events_json parameter above.  The source document's pid
 * and tid survive, so a merged file shows the server as a second
 * process; its process_name metadata is relabelled "dlwd" to keep
 * the two sides distinguishable.  Fails when `chrome_json` does not
 * parse or lacks a traceEvents array.
 */
StatusOr<std::string> reprojectChromeTraceEvents(
    const std::string &chrome_json, double offset_us);

/** Render a snapshot to `path`; IO errors surface as Status. */
Status writeChromeTrace(const std::string &path,
                        const TimelineSnapshot &snap);

/**
 * Write the raw event stream (unpaired B/E, i, C) of every ring to
 * an open file descriptor using only async-signal-safe calls.  The
 * crash handler's core, exposed so tests can exercise it without a
 * signal.
 */
void dumpTimelineToFd(int fd);

/**
 * Arm the crash dump: on a fatal signal, dump the timeline to
 * `path` (truncating), then restore the previous disposition and
 * re-raise.  Installing again just changes the path.
 */
void installTimelineCrashHandler(const std::string &path);

/** Disarm without uninstalling (the handler becomes a no-op). */
void disarmTimelineCrashHandler();

} // namespace obs
} // namespace dlw

#endif // DLW_OBS_TIMELINE_EXPORT_HH
