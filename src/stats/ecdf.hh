/**
 * @file
 * Exact empirical distribution function over a retained sample.
 *
 * Retains all samples (optionally reservoir-capped), sorts lazily,
 * and answers quantile / CDF / CCDF queries exactly.  This is the
 * reference implementation the streaming estimators are tested
 * against, and the tool of choice for the per-figure CDF plots where
 * sample counts are modest (10^5 - 10^7).
 */

#ifndef DLW_STATS_ECDF_HH
#define DLW_STATS_ECDF_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.hh"

namespace dlw
{
namespace stats
{

/**
 * Empirical CDF with optional reservoir sampling cap.
 */
class Ecdf
{
  public:
    /** Unbounded: retain every sample. */
    Ecdf() = default;

    /**
     * Bounded: retain at most cap samples by reservoir sampling.
     *
     * @param cap  Reservoir capacity (> 0).
     * @param seed Seed for the reservoir's replacement draws.
     */
    Ecdf(std::size_t cap, std::uint64_t seed);

    /** Add one observation. */
    void add(double x);

    /** Add a batch of observations. */
    void addAll(const std::vector<double> &xs);

    /**
     * Fold another ECDF into this one.
     *
     * Uncapped ECDFs merge exactly: the result answers every query as
     * if all samples had been added to one instance, regardless of
     * how they were split (merging is associative up to sample
     * order, which no query observes).  When this instance is capped,
     * the other side's retained samples are offered to the reservoir
     * in sorted order, which keeps the merge deterministic for a
     * given reservoir state; the fleet merge layer exploits this by
     * always reducing shards in drive order.
     */
    void merge(const Ecdf &other);

    /** Number of observations offered (not capped). */
    std::size_t count() const { return seen_; }

    /** Number of samples actually retained. */
    std::size_t retained() const { return data_.size(); }

    /** True when no observation has been offered. */
    bool empty() const { return seen_ == 0; }

    /**
     * Exact sample quantile (linear interpolation, type 7).
     *
     * @param q Quantile in [0, 1].
     */
    double quantile(double q) const;

    /** Median shorthand. */
    double median() const { return quantile(0.5); }

    /** Fraction of samples <= x. */
    double cdf(double x) const;

    /** Fraction of samples > x. */
    double ccdf(double x) const { return 1.0 - cdf(x); }

    /** Smallest retained sample. */
    double min() const;

    /** Largest retained sample. */
    double max() const;

    /** Mean of retained samples. */
    double mean() const;

    /**
     * Evaluate the CDF at n evenly spaced quantile points.
     *
     * @param n Number of points (>= 2).
     * @return Pairs (value, cumulative probability) suitable for a
     *         CDF plot of this sample.
     */
    std::vector<std::pair<double, double>> curve(std::size_t n) const;

    /** Sorted copy of the retained samples. */
    std::vector<double> sorted() const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> data_;
    mutable bool sorted_ = true;
    std::size_t seen_ = 0;
    std::size_t cap_ = 0; // 0 = unbounded
    Rng rng_;
};

} // namespace stats
} // namespace dlw

#endif // DLW_STATS_ECDF_HH
